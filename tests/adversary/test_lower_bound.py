"""Tests for the Section 5 adversary and its executable bounds."""

from __future__ import annotations

import math

import pytest

from repro.adversary.delays import band_freeze, congested_links, worst_case_unit
from repro.adversary.lower_bound import (
    adversarial_run,
    corollary_bound,
    theorem_bound,
)
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.sim.network import run_election
from repro.topology.complete import complete_without_sense


class TestBounds:
    def test_theorem_bound_formula(self):
        # M messages => d = M/N => floor N/16d = N²/16M
        assert theorem_bound(64, 64) == 64 / 16
        assert theorem_bound(100, 200) == pytest.approx(100 / 32)

    def test_zero_messages_means_no_finite_bound(self):
        assert theorem_bound(64, 0) == math.inf

    def test_corollary_is_n_over_log_n(self):
        assert corollary_bound(256) == pytest.approx(256 / (16 * 8))


class TestAdversarialRun:
    def test_e_is_driven_to_linear_time(self):
        times = {}
        for n in (32, 128):
            result = adversarial_run(ProtocolE(), n)
            times[n] = result.election_time
            assert result.election_time >= theorem_bound(n, result.messages_total)
        assert times[128] / times[32] > 3.0

    def test_adversarial_time_beats_the_corollary_floor(self):
        for n in (32, 64, 128):
            result = adversarial_run(ProtocolE(), n)
            assert result.election_time >= corollary_bound(n)

    def test_locality_parameter_controls_the_band_width(self):
        result = adversarial_run(ProtocolE(), 32, locality=4)
        result.verify()

    def test_the_tradeoff_product_holds_across_the_f_family(self):
        """Theorem 5.1 as a trade-off: time × (messages/N) = Ω(N)."""
        n = 64
        for k in (2, 8, 32):
            result = run_election(
                ProtocolF(k=k), complete_without_sense(n, seed=11),
                delays=worst_case_unit(), seed=11,
            )
            product = result.election_time * result.messages_total / n
            assert product >= n / 16


class TestAdversarialDelayModels:
    def test_worst_case_unit_is_constant_one(self):
        import random

        from repro.core.messages import Wakeup

        model = worst_case_unit()
        assert model.latency(0, 1, Wakeup(), 0.0, random.Random(0)) == 1.0

    def test_congested_links_space_deliveries(self):
        import random

        from repro.core.messages import Wakeup

        model = congested_links()
        assert model.gap(0, 1, Wakeup(), 0.0, random.Random(0)) == 1.0
        assert model.latency(0, 1, Wakeup(), 0.0, random.Random(0)) < 0.2

    def test_band_freeze_slows_the_middle_half_only(self):
        import random

        from repro.core.messages import Wakeup

        model = band_freeze(16, epsilon=0.1)
        rng = random.Random(0)
        # middle band = ids 4..11
        assert model.latency(5, 14, Wakeup(), 0.0, rng) == 1.0
        assert model.latency(0, 6, Wakeup(), 0.0, rng) == 1.0
        assert model.latency(0, 15, Wakeup(), 0.0, rng) == 0.1

    def test_band_freeze_still_elects(self):
        result = run_election(
            ProtocolE(), complete_without_sense(32, seed=2),
            delays=band_freeze(32), seed=2,
        )
        result.verify()
