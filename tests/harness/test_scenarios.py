"""Tests for the named scenario library."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.harness.scenarios import SCENARIOS, run_scenario
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_c import ProtocolC


class TestCatalogue:
    def test_expected_scenarios_exist(self):
        assert set(SCENARIOS) == {
            "benign", "worst_case", "chain", "adversarial_ports",
            "congested", "frozen_middle", "lossy", "partitioned",
        }

    def test_every_scenario_has_a_description(self):
        for scenario in SCENARIOS.values():
            assert scenario.description


class TestRunScenario:
    # The (protocol × scenario) cross-product smoke coverage that used to
    # live here moved to tests/matrix/test_matrix_smoke.py, which drives
    # every legal cell of the curated slice (src/repro/matrix/curated.toml)
    # for all fourteen protocols and all eight scenarios.  These tests keep
    # the scenario-library behaviours the matrix does not assert.

    def test_sense_protocol_rejected_by_the_port_adversary(self):
        with pytest.raises(ConfigurationError, match="unlabeled"):
            run_scenario(ProtocolC(), "adversarial_ports", 16)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="choose from"):
            run_scenario(ProtocolE(), "nope", 16)

    def test_overrides_flow_through(self):
        result = run_scenario(
            ProtocolE(), "worst_case", 12, seed=2, wakeup={3: 0.0}
        )
        assert result.leader_position == 3

    def test_lossy_scenario_injects_faults_and_recovers(self):
        result = run_scenario(ProtocolE(), "lossy", 16, seed=3)
        result.verify()
        assert result.faults_injected
        assert result.messages_dropped > 0
        assert result.retransmissions > 0
        assert result.protocol.startswith("REL[")

    def test_partitioned_scenario_heals_and_elects_the_top_id(self):
        result = run_scenario(ProtocolG(k=4), "partitioned", 16, seed=1)
        result.verify()
        assert result.messages_dropped > 0

    def test_port_adversary_pins_e_to_linear_time(self):
        from repro.adversary.lower_bound import theorem_bound

        result = run_scenario(ProtocolE(), "adversarial_ports", 32, seed=1)
        assert result.election_time >= theorem_bound(32, result.messages_total)
        assert result.election_time >= 1.5 * 32
