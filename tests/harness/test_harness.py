"""Tests for the experiment harness and report rendering."""

from __future__ import annotations

import pytest

from repro.harness.runner import Check, ExperimentReport
from repro.harness.experiments import QUICK, Scale, e1_figure1


class TestExperimentReport:
    def test_passes_when_all_checks_pass(self):
        report = ExperimentReport("X", "claim")
        report.check("a", True)
        report.check("b", True)
        assert report.passed

    def test_fails_when_any_check_fails(self):
        report = ExperimentReport("X", "claim")
        report.check("a", True)
        report.check("b", False, "boom")
        assert not report.passed
        with pytest.raises(AssertionError, match="boom"):
            report.raise_if_failed()

    def test_render_includes_claim_tables_and_verdicts(self):
        report = ExperimentReport("E-test", "the claim text")
        report.add_table("tbl", ("N", "msgs"), [(4, 10)])
        report.find("slope", 1.0)
        report.check("shape holds", True, "detail")
        text = report.render()
        assert "the claim text" in text
        assert "| N" in text
        assert "[PASS] shape holds" in text

    def test_check_records_are_immutable_values(self):
        check = Check("n", True, "d")
        with pytest.raises(AttributeError):
            check.passed = False  # type: ignore[misc]


class TestScales:
    def test_quick_scale_is_modest(self):
        assert max(QUICK.ns) <= 128
        assert len(QUICK.seeds) <= 3

    def test_custom_scales_flow_through(self):
        tiny = Scale(ns=(4, 8), seeds=(1,))
        report = e1_figure1(tiny)
        assert report.passed
        # the table was built from the custom sweep
        title, headers, rows = report.tables[0]
        assert [row[0] for row in rows] == [4, 8]


class TestReportGenerator:
    def test_generate_quick_writes_markdown(self, tmp_path, capsys):
        """Smoke: the CLI path runs E1 (cheap) end to end."""
        from repro.harness import report as report_module

        # run only the cheap experiment through the module's machinery
        markdown = report_module.PREAMBLE + e1_figure1(QUICK).render()
        out = tmp_path / "EXPERIMENTS.md"
        out.write_text(markdown)
        content = out.read_text()
        assert "paper vs. measured" in content
        assert "Figure 1" in content
