"""Unit tests for the app-composition wrapper itself."""

from __future__ import annotations

import pytest

from repro.apps.spanning_tree import SpanningTree, SpanningTreeNode
from repro.apps.wrapper import AppNode, _InterceptedContext
from repro.core.messages import Wakeup
from repro.protocols.nosense.protocol_e import ProtocolE, SeqCapture
from repro.protocols.sense.protocol_a import Capture, ProtocolA

from tests.protocols.helpers import RecordingContext


class TestInterceptedContext:
    def test_passthrough_of_capabilities(self):
        real = RecordingContext(node_id=3, n=8, sense=True)
        app = SpanningTreeNode(real, ProtocolA(k=2))
        inner_ctx = app.inner.ctx
        assert isinstance(inner_ctx, _InterceptedContext)
        assert (inner_ctx.node_id, inner_ctx.n) == (3, 8)
        assert inner_ctx.port_with_label(2) == 1
        assert inner_ctx.port_label(0) == 1
        assert inner_ctx.now() == 0.0
        inner_ctx.send(4, Wakeup())
        assert real.sent == [(4, Wakeup())]
        inner_ctx.trace("x", y=1)  # must not raise

    def test_leader_interception_reaches_both_parties(self):
        real = RecordingContext(node_id=3, n=8, sense=True)
        app = SpanningTreeNode(real, ProtocolA(k=2))
        app.inner.ctx.declare_leader()
        assert app.is_leader
        assert app.leader_id == 3
        assert real.leader_declared  # still reported to the runtime


class TestMessageRouting:
    def test_app_messages_never_reach_the_inner_protocol(self):
        from repro.apps.spanning_tree import TreeInvite

        real = RecordingContext(node_id=5, n=8)
        app = SpanningTreeNode(real, ProtocolE())
        app.receive(2, TreeInvite(7))
        assert app.parent_port == 2
        assert app.leader_id == 7
        # the inner protocol saw nothing (it would have raised or replied)
        assert app.inner.role.value == "passive"

    def test_protocol_messages_pass_straight_through(self):
        real = RecordingContext(node_id=5, n=8)
        app = SpanningTreeNode(real, ProtocolE())
        app.receive(2, SeqCapture(1, 7))
        assert app.inner.role.value == "captured"

    def test_wake_propagates_base_status_to_the_inner_node(self):
        real = RecordingContext(node_id=5, n=8, sense=True)
        app = SpanningTreeNode(real, ProtocolA(k=2))
        app.wake(True)
        assert app.inner.is_base
        # the inner candidacy started: a capture went out
        assert any(isinstance(m, Capture) for _, m in real.sent)

    def test_snapshot_merges_inner_and_app_state(self):
        real = RecordingContext(node_id=5, n=8)
        app = SpanningTreeNode(real, ProtocolE())
        snap = app.snapshot()
        assert "level" in snap  # inner field
        assert "tree_complete" in snap  # app field
        assert snap["leader_id"] is None


class TestAbstractHooks:
    def test_base_appnode_requires_the_hooks(self):
        node = AppNode(RecordingContext(), ProtocolE())
        with pytest.raises(NotImplementedError):
            node.on_leader_elected()
        with pytest.raises(NotImplementedError):
            node.on_app_message(0, Wakeup())

    def test_describe_nests_the_election_name(self):
        assert SpanningTree(ProtocolE()).describe() == "SpanningTree[E]"
