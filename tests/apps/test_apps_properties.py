"""Property tests for the applications layer.

The apps must inherit the election's correctness under any environment and
deliver their own postconditions exactly: tree shape, fold value, payload
ubiquity.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import wakeup
from repro.apps.broadcast import Broadcast
from repro.apps.global_function import GlobalFunction
from repro.apps.spanning_tree import SpanningTree
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.sim.delays import UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import complete_without_sense

SETTINGS = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

environments = st.fixed_dictionaries(
    {
        "n": st.integers(min_value=2, max_value=24),
        "seed": st.integers(min_value=0, max_value=10**6),
        "bases": st.integers(min_value=1, max_value=24),
    }
)


def run_app(app_factory, env):
    n = env["n"]
    return run_election(
        app_factory(),
        complete_without_sense(n, seed=env["seed"]),
        delays=UniformDelay(0.05, 1.0),
        wakeup=wakeup.random_subset(
            min(env["bases"], n), seed_offset=env["seed"]
        ),
        seed=env["seed"],
    )


class TestSpanningTreeProperties:
    @SETTINGS
    @given(env=environments)
    def test_tree_is_always_a_rooted_star_with_n_minus_1_edges(self, env):
        result = run_app(lambda: SpanningTree(ProtocolE()), env)
        result.verify()
        snaps = result.node_snapshots
        parents = [s for s in snaps if s["parent_port"] is not None]
        assert len(parents) == env["n"] - 1
        root = snaps[result.leader_position]
        assert root["parent_port"] is None
        assert root["children"] == env["n"] - 1
        assert all(s["leader_id"] == result.leader_id for s in snaps)


class TestGlobalFunctionProperties:
    @SETTINGS
    @given(env=environments, fold=st.sampled_from(["sum", "max", "min"]))
    def test_fold_is_exact_and_ubiquitous(self, env, fold):
        result = run_app(
            lambda: GlobalFunction(
                ProtocolE(), fold=fold, input_fn=lambda i: (i * 13) % 97
            ),
            env,
        )
        inputs = [(i * 13) % 97 for i in range(env["n"])]
        expected = {"sum": sum, "max": max, "min": min}[fold](inputs)
        assert all(
            s["global_result"] == expected for s in result.node_snapshots
        )


class TestBroadcastProperties:
    @SETTINGS
    @given(env=environments, payload=st.integers(min_value=0, max_value=10**6))
    def test_payload_reaches_every_node_exactly(self, env, payload):
        result = run_app(
            lambda: Broadcast(ProtocolE(), payload_fn=lambda i: payload), env
        )
        assert all(s["received"] == payload for s in result.node_snapshots)
        leader = result.node_snapshots[result.leader_position]
        assert leader["broadcast_complete"]
