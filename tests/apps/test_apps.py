"""Tests for the applications layer (Section 1 equivalences)."""

from __future__ import annotations

import pytest

from repro.apps.broadcast import Broadcast
from repro.apps.global_function import FOLDS, GlobalFunction
from repro.apps.spanning_tree import SpanningTree
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

ELECTIONS = [
    ("C", lambda: ProtocolC(), True),
    ("A", lambda: ProtocolA(), True),
    ("E", lambda: ProtocolE(), False),
    ("G", lambda: ProtocolG(k=4), False),
]


def topology_for(sense, n, seed=0):
    if sense:
        return complete_with_sense_of_direction(n)
    return complete_without_sense(n, seed=seed)


class TestSpanningTree:
    @pytest.mark.parametrize("name,factory,sense", ELECTIONS)
    def test_tree_over_any_election_protocol(self, name, factory, sense):
        n = 16
        result = run_election(SpanningTree(factory()), topology_for(sense, n))
        result.verify()
        snaps = result.node_snapshots
        assert sum(1 for s in snaps if s["parent_port"] is not None) == n - 1
        assert all(s["leader_id"] == result.leader_id for s in snaps)
        root = snaps[result.leader_position]
        assert root["tree_complete"] and root["children"] == n - 1

    def test_overhead_is_two_rounds(self):
        n = 32
        bare = run_election(ProtocolC(), complete_with_sense_of_direction(n))
        tree = run_election(
            SpanningTree(ProtocolC()), complete_with_sense_of_direction(n)
        )
        assert tree.messages_total - bare.messages_total == 2 * (n - 1)
        assert tree.quiescent_at - bare.quiescent_at <= 2.0

    def test_tree_survives_random_delays(self):
        for seed in range(4):
            result = run_election(
                SpanningTree(ProtocolE()),
                complete_without_sense(12, seed=seed),
                delays=UniformDelay(0.05, 1.0),
                seed=seed,
            )
            result.verify()
            assert all(
                s["leader_id"] == result.leader_id for s in result.node_snapshots
            )


class TestGlobalFunction:
    @pytest.mark.parametrize("fold,expected", [
        ("sum", sum(range(16))),
        ("max", 15),
        ("min", 0),
    ])
    def test_folds_over_identities(self, fold, expected):
        result = run_election(
            GlobalFunction(ProtocolC(), fold=fold),
            complete_with_sense_of_direction(16),
        )
        assert all(
            s["global_result"] == expected for s in result.node_snapshots
        )

    def test_custom_inputs(self):
        result = run_election(
            GlobalFunction(ProtocolC(), fold="sum", input_fn=lambda i: i * i),
            complete_with_sense_of_direction(8),
        )
        expected = sum(i * i for i in range(8))
        assert result.node_snapshots[0]["global_result"] == expected

    def test_unknown_fold_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fold"):
            GlobalFunction(ProtocolC(), fold="median")

    def test_all_folds_registered(self):
        assert set(FOLDS) == {"sum", "max", "min"}

    def test_overhead_is_three_rounds(self):
        n = 16
        bare = run_election(ProtocolC(), complete_with_sense_of_direction(n))
        agg = run_election(
            GlobalFunction(ProtocolC()), complete_with_sense_of_direction(n)
        )
        assert agg.messages_total - bare.messages_total == 3 * (n - 1)


class TestBroadcast:
    def test_payload_reaches_everyone(self):
        result = run_election(
            Broadcast(ProtocolC(), payload_fn=lambda i: 777),
            complete_with_sense_of_direction(16),
        )
        assert all(s["received"] == 777 for s in result.node_snapshots)
        leader = result.node_snapshots[result.leader_position]
        assert leader["broadcast_complete"]

    def test_default_payload_is_the_leader_identity(self):
        result = run_election(
            Broadcast(ProtocolE()), complete_without_sense(10, seed=1)
        )
        assert all(
            s["received"] == result.leader_id for s in result.node_snapshots
        )


class TestComposition:
    def test_described_names_nest(self):
        app = GlobalFunction(ProtocolG(k=4), fold="max")
        assert app.describe() == "GlobalFunction(max)[G(k=4)]"

    def test_validation_delegates_to_the_election(self):
        with pytest.raises(ConfigurationError, match="sense of direction"):
            run_election(
                SpanningTree(ProtocolC()), complete_without_sense(8)
            )

    def test_app_preserves_election_safety_checks(self):
        result = run_election(
            SpanningTree(ProtocolG(k=3)), complete_without_sense(12, seed=5)
        )
        result.verify()
