"""Smoke tests: the CLI and every example script run end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


class TestCli:
    def test_list_shows_every_protocol(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("A'", "C", "G", "FT", "LMW86", "HS"):
            assert name in out

    def test_run_prints_summary_and_breakdown(self, capsys):
        assert cli_main(["run", "--protocol", "C", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "leader=15" in out
        assert "message type" in out

    def test_run_without_sense(self, capsys):
        assert cli_main(
            ["run", "--protocol", "G", "--n", "12", "--no-sense"]
        ) == 0
        assert "leader=" in capsys.readouterr().out

    def test_replay_narrates(self, capsys):
        assert cli_main(["replay", "--protocol", "A", "--n", "6"]) == 0
        out = capsys.readouterr().out
        assert "LEADER" in out and "wakes" in out

    def test_replay_verbose_lists_messages(self, capsys):
        assert cli_main(
            ["replay", "--protocol", "A", "--n", "4", "--messages"]
        ) == 0
        assert "Capture" in capsys.readouterr().out

    def test_scenario_runs(self, capsys):
        assert cli_main(
            ["scenario", "--protocol", "G", "--name", "chain", "--n", "16"]
        ) == 0
        assert "leader=" in capsys.readouterr().out

    def test_scenario_unknown_lists_catalogue(self, capsys):
        assert cli_main(["scenario", "--name", "bogus"]) == 2
        out = capsys.readouterr().out
        assert "frozen_middle" in out

    def test_report_quick_writes_file(self, tmp_path, capsys):
        out = tmp_path / "EXP.md"
        # restrict to the cheap path: quick scale
        assert cli_main(["report", "--quick", "--output", str(out)]) == 0
        assert "paper vs. measured" in out.read_text()

    def test_verify_explores_exhaustively(self, capsys):
        assert cli_main(["verify", "--protocol", "A", "--n", "3"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out and "POR" in out

    def test_verify_no_por_cross_validates(self, capsys):
        assert cli_main(
            ["verify", "--protocol", "E", "--no-sense", "--n", "3", "--no-por"]
        ) == 0
        assert "full DFS" in capsys.readouterr().out

    def test_verify_fuzzes(self, capsys):
        assert cli_main(
            ["verify", "--protocol", "A", "--n", "5", "--fuzz", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "20 schedules" in out and "ok" in out

    def test_verify_replays_a_trace_file(self, tmp_path, capsys):
        from repro.topology.complete import complete_with_sense_of_direction
        from repro.verification import (
            ScheduleTrace, replay_trace, save_trace,
        )

        # record a complete clean run of the registered Protocol A by
        # canonicalising a lenient replay of the empty tape
        topology = complete_with_sense_of_direction(4)
        seeded = ScheduleTrace.capture("A", topology, (0, 1, 2, 3), ())
        outcome = replay_trace(seeded, strict=False)
        assert outcome.quiescent
        full = ScheduleTrace.capture(
            "A", topology, (0, 1, 2, 3), outcome.choices_used
        )
        path = save_trace(full, tmp_path / "clean.json")
        assert cli_main(["verify", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schedule replay of A" in out
        assert "verdict: ok" in out


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script, monkeypatch, capsys):
    small = {
        "quickstart.py": ["16"],
        "protocol_shootout.py": ["16"],
        "spanning_tree_demo.py": ["16"],
        "lower_bound_adversary.py": ["16", "32"],
        "fault_tolerant_demo.py": ["17"],
        "figure1_sense_of_direction.py": [],
        "adversary_gallery.py": ["16"],
        "exhaustive_verification.py": [],
    }
    monkeypatch.setattr(sys, "argv", [script.name, *small.get(script.name, [])])
    runpy.run_path(str(script), run_name="__main__")
    assert capsys.readouterr().out  # every example prints something
