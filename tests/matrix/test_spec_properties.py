"""Property-based guarantees for the spec model (satellite 1).

Two contracts, each over *generated* specs rather than hand-picked ones:

* **Round-trip** — any valid spec list serialises to TOML and to CSV and
  parses back equal.  This is what makes spec files a safe interchange
  format: nothing a user can express is lost or mangled by either codec.
* **Expansion** — the cell count is exactly the product of the axis
  lengths (with the empty-``ks`` axis contributing one default-k cell)
  and no two cells are equal: expansion is a pure cross-product, no
  dedup, no drops.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix.spec import (
    ScenarioSpec,
    expand,
    parse_csv,
    parse_toml,
    specs_to_csv,
    specs_to_toml,
)

# Generation stays inside the *valid* spec space: the round-trip contract
# is about serialisation fidelity, not validation (validation has its own
# unit tests).  Tags avoid the CSV axis separator "|" and commas/newlines;
# everything else is exercised freely, including quotes and backslashes
# (the TOML writer must escape them).
_PROTOCOLS = ("A", "A'", "AG85", "B", "C", "CR", "D", "E", "F", "FT",
              "G", "HS", "LMW86", "R")
_SCENARIOS = ("benign", "worst_case", "chain", "adversarial_ports",
              "congested", "frozen_middle", "lossy", "partitioned")

_tags = st.text(
    st.characters(
        codec="ascii", min_codepoint=0x20, exclude_characters='|,\r\n'
    ),
    min_size=1,
    max_size=16,
)


def _axis(values, max_size=4):
    return st.lists(
        st.sampled_from(values), min_size=1, max_size=max_size, unique=True
    ).map(tuple)


def _int_axis(lo, hi, min_size=1, max_size=3):
    return st.lists(
        st.integers(lo, hi), min_size=min_size, max_size=max_size,
        unique=True,
    ).map(tuple)


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    fuzz_schedules = draw(st.sampled_from([0, 8, 50]))
    symmetry = draw(st.sampled_from([None, "census"]))
    return ScenarioSpec(
        tag=draw(_tags),
        protocols=draw(_axis(_PROTOCOLS)),
        scenarios=draw(_axis(_SCENARIOS)),
        ns=draw(_int_axis(2, 128)),
        seeds=draw(_int_axis(0, 99)),
        ks=draw(_int_axis(1, 16, min_size=0, max_size=3)),
        symmetry=symmetry,
        verify_ns=draw(_int_axis(2, 6)) if symmetry else (),
        fuzz_ns=draw(_int_axis(2, 16)) if fuzz_schedules else (),
        fuzz_schedules=fuzz_schedules,
        fault_budget=draw(st.integers(0, 4)) if fuzz_schedules else 0,
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(scenario_specs(), min_size=1, max_size=4))
def test_toml_round_trip(specs):
    assert parse_toml(specs_to_toml(specs)) == specs


@settings(max_examples=60, deadline=None)
@given(st.lists(scenario_specs(), min_size=1, max_size=4))
def test_csv_round_trip(specs):
    assert parse_csv(specs_to_csv(specs)) == specs


@settings(max_examples=100, deadline=None)
@given(scenario_specs())
def test_expansion_yields_the_exact_cross_product_count(spec):
    cells = expand(spec)
    expected = (
        len(spec.protocols)
        * len(spec.scenarios)
        * len(spec.ns)
        * len(spec.seeds)
        * max(1, len(spec.ks))
    )
    assert len(cells) == expected


@settings(max_examples=100, deadline=None)
@given(scenario_specs())
def test_expansion_produces_no_duplicate_cells(spec):
    cells = expand(spec)
    assert len(set(cells)) == len(cells)
