"""End-to-end tests for ``python -m repro check --all`` (marked
``matrix_smoke`` where they run the full quick campaign)."""

from __future__ import annotations

import json

import pytest

from repro.matrix import check_all, parse_toml
from tests.sim.determinism_cases import assert_digest_stable

SMALL = """
[[spec]]
tag = "mini"
protocols = ["E", "C"]
scenarios = ["worst_case", "lossy"]
ns = [8]
symmetry = "census"
verify_ns = [4]
fuzz_ns = [8]
fuzz_schedules = 12
fault_budget = 1
"""


@pytest.fixture(scope="module")
def mini_report():
    return check_all(parse_toml(SMALL), parallel=False)


class TestPhases:
    def test_all_seven_phases_ran(self, mini_report):
        assert mini_report.matrix.cells
        assert set(mini_report.verify) == {"E@4+census", "C@4+census"}
        assert set(mini_report.fuzz) == {
            "E@8x12+faults1", "C@8x12+faults1"
        }
        assert len(mini_report.contract) == 16
        assert mini_report.shard
        assert len(mini_report.conformance) == 16
        assert set(mini_report.stat) == {"RS/benign@64", "RT/benign@64"}

    def test_stat_phase_certifies_the_acceptance_pair(self, mini_report):
        # Full (non-quick) mode must certify LCB >= 0.99 at 0.99
        # confidence for every randomized stratum — the ISSUE's
        # acceptance criterion, enforced on every check --all.
        for key, stratum in mini_report.stat.items():
            assert stratum["trials"] == 600, key
            assert stratum["lcb_safety"] >= 0.99, (key, stratum)
            assert stratum["lcb_bound"] >= 0.99, (key, stratum)

    def test_conformance_phase_respects_every_static_bound(
        self, mini_report
    ):
        for name, outcome in mini_report.conformance.items():
            assert outcome["ok"], (name, outcome["violations"])
            assert outcome["measured_max"] <= outcome["static_bound"], name
            assert outcome["leader_id"] is not None, name

    def test_sharded_digest_phase_matches_serial_on_every_cell(
        self, mini_report
    ):
        assert "C@64/shards2" in mini_report.shard
        assert any("+lossy" in label for label in mini_report.shard)
        for label, outcome in mini_report.shard.items():
            assert outcome["equal"], label
            assert outcome["leader_id"] is not None, label

    def test_the_campaign_passes(self, mini_report):
        assert mini_report.passed
        mini_report.raise_if_failed()

    def test_exploration_results_carry_no_worker_counts(self, mini_report):
        # The digest-determinism contract: nothing machine- or
        # schedule-dependent may reach the payload.
        text = json.dumps(mini_report.payload())
        assert "workers" not in text
        assert "seconds" not in text

    def test_contract_phase_masks_all_loss(self, mini_report):
        for name, outcome in mini_report.contract.items():
            assert outcome["packets_abandoned"] == 0, name
            assert outcome["leader_id"] is not None, name

    def test_report_files_are_written(self, tmp_path):
        report = check_all(
            parse_toml(SMALL), parallel=False, outdir=tmp_path
        )
        payload = json.loads((tmp_path / "check_report.json").read_text())
        assert payload == report.payload()
        assert (tmp_path / "check_report.md").exists()
        assert (tmp_path / "matrix" / "matrix_report.json").exists()


class TestDigestDeterminism:
    def test_serial_and_parallel_digests_are_byte_identical(self):
        assert_digest_stable(
            lambda parallel: check_all(
                parse_toml(SMALL), parallel=parallel
            ).digest(),
            label="check --all digest",
        )


@pytest.mark.matrix_smoke
class TestQuickCampaign:
    """The CI `matrix_smoke` slice: the real curated quick campaign."""

    def test_curated_quick_campaign_passes_end_to_end(self, tmp_path):
        report = check_all(quick=True, outdir=tmp_path)
        assert report.passed, report.render()
        # Expansion → filtering → sweep → cross-checks all happened.
        assert len(report.matrix.cells) > 100
        assert report.matrix.rejected
        assert report.verify
        assert report.fuzz
        assert len(report.contract) == 16
        assert len(report.conformance) == 16
        assert (tmp_path / "check_report.json").exists()


class TestCLI:
    def test_check_requires_dash_dash_all(self, capsys):
        from repro.__main__ import main

        assert main(["check"]) == 2

    def test_check_all_runs_a_spec_file(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_file = tmp_path / "mini.toml"
        spec_file.write_text(SMALL)
        code = main(
            ["check", "--all", "--spec", str(spec_file), "--quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "check --all report" in out
        assert "digest" in out

    def test_matrix_subcommand_sweeps_a_spec_file(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_file = tmp_path / "mini.toml"
        spec_file.write_text(
            '[[spec]]\ntag = "cli"\nprotocols = ["E"]\n'
            'scenarios = ["benign"]\nns = [8]\n'
        )
        code = main(
            ["matrix", "--spec", str(spec_file), "--outdir",
             str(tmp_path / "out")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Matrix sweep report" in out
        assert (tmp_path / "out" / "matrix_report.json").exists()

    def test_matrix_strict_mode_refuses_illegal_cells(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_file = tmp_path / "bad.toml"
        spec_file.write_text(
            '[[spec]]\ntag = "cli"\nprotocols = ["C"]\n'
            'scenarios = ["adversarial_ports"]\nns = [16]\n'
        )
        code = main(["matrix", "--spec", str(spec_file), "--strict"])
        assert code == 2
        assert "refused" in capsys.readouterr().err
