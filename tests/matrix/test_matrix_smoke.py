"""Tier-1 cross-product smoke: every curated (protocol × scenario) cell.

One parametrised, matrix-driven test replaces the old scattered
per-protocol scenario smoke tests: every *legal* cell of the curated
slice small enough for tier-1 (N ≤ 8) runs one election and elects a
verified unique leader.  Coverage therefore tracks the curated spec file
— adding a protocol or scenario to the slice automatically extends this
test, and a cell the capability filter rejects is asserted to be
rejected for a *known* reason rather than silently skipped.
"""

from __future__ import annotations

import pytest

from repro.harness.scenarios import run_scenario
from repro.matrix.spec import build_protocol, curated_specs, expand_specs

_LEGAL, _REJECTED = expand_specs(curated_specs())
SMOKE_CELLS = [cell for cell in _LEGAL if cell.n <= 8]


def _cell_id(cell) -> str:
    return f"{cell.tag}/{cell.cell_id}"


def test_the_smoke_slice_is_substantial():
    """The curated slice must keep giving tier-1 real cross-product cover."""
    assert len(SMOKE_CELLS) >= 80
    protocols = {cell.protocol for cell in SMOKE_CELLS}
    scenarios = {cell.scenario for cell in SMOKE_CELLS}
    assert len(protocols) == 14
    assert len(scenarios) == 8


@pytest.mark.parametrize("cell", SMOKE_CELLS, ids=_cell_id)
def test_cell_elects_a_unique_verified_leader(cell):
    result = run_scenario(
        build_protocol(cell), cell.scenario, cell.n, seed=cell.seed
    )
    result.verify()
    assert result.leader_id is not None


@pytest.mark.parametrize(
    "cell,reason", _REJECTED, ids=[_cell_id(c) for c, _ in _REJECTED]
)
def test_rejected_cells_have_a_known_reason(cell, reason):
    known = ("unlabeled", "too small", "no k parameter", "exceeds",
             "power of two", "seed_family")
    assert any(marker in reason for marker in known), reason
