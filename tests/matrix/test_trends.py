"""Tests for the BENCH trend gate — including the acceptance criterion
that a synthetically regressed BENCH entry demonstrably fails it."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.matrix.trends import (
    DEFAULT_TOLERANCE,
    compare_files,
    compare_payloads,
    main,
    metric_direction,
)

REPO = Path(__file__).parent.parent.parent

KERNEL = {
    "C@2048": {
        "events": 16898,
        "events_per_sec": 193296.5,
        "messages": 14850,
        "messages_per_sec": 169869.4,
        "run_seconds": 0.0874,
        "seed_events_per_sec": 51000.0,
        "speedup_vs_seed": 3.79,
    }
}


class TestMetricDirection:
    def test_throughputs_are_higher_better(self):
        assert metric_direction("events_per_sec") == "up"
        assert metric_direction("states_per_sec") == "up"
        assert metric_direction("speedup_vs_seed") == "up"
        assert metric_direction("store_reduction_vs_pr1") == "up"

    def test_overheads_are_lower_better(self):
        key = "message overhead at drop=0.25 vs drop=0, worst ratio"
        assert metric_direction(key) == "down"

    def test_raw_counts_and_wall_times_are_untracked(self):
        for key in ("events", "states", "run_seconds",
                    "transitions", "messages"):
            assert metric_direction(key) is None

    def test_vector_engine_ratios_are_higher_better(self):
        assert metric_direction("vector_speedup_vs_interp") == "up"
        assert metric_direction("vector_speedup_vs_record") == "up"

    def test_peak_rss_is_lower_better(self):
        assert metric_direction("peak_rss_mb") == "down"


class TestComparison:
    def test_identical_payloads_pass(self):
        report = compare_payloads(KERNEL, copy.deepcopy(KERNEL))
        assert report.ok
        assert report.findings  # tracked metrics were actually compared

    def test_synthetic_regression_fails_the_gate(self):
        """The acceptance criterion: a regressed BENCH entry must fail."""
        regressed = copy.deepcopy(KERNEL)
        regressed["C@2048"]["events_per_sec"] *= 0.5  # -50%, band is 30%
        report = compare_payloads(KERNEL, regressed)
        assert not report.ok
        (finding,) = report.regressions
        assert finding.path == "C@2048.events_per_sec"

    def test_movement_inside_the_band_passes(self):
        wobbled = copy.deepcopy(KERNEL)
        wobbled["C@2048"]["events_per_sec"] *= 0.8  # -20% < 30% band
        assert compare_payloads(KERNEL, wobbled).ok

    def test_improvement_always_passes(self):
        faster = copy.deepcopy(KERNEL)
        faster["C@2048"]["events_per_sec"] *= 3.0
        assert compare_payloads(KERNEL, faster).ok

    def test_overhead_rising_beyond_the_band_fails(self):
        baseline = {"findings": {"message overhead, worst ratio": 1.45}}
        worse = {"findings": {"message overhead, worst ratio": 2.5}}
        report = compare_payloads(baseline, worse)
        assert not report.ok

    def test_check_flipping_false_fails_without_any_band(self):
        baseline = {"checks": {"every lossy run elected": True}}
        broken = {"checks": {"every lossy run elected": False}}
        report = compare_payloads(baseline, broken)
        assert not report.ok
        (finding,) = report.regressions
        assert "flip" in finding.detail

    def test_check_staying_true_passes(self):
        baseline = {"checks": {"claim": True, "already-false": False}}
        same = {"checks": {"claim": True, "already-false": False}}
        assert compare_payloads(baseline, same).ok

    def test_missing_tracked_metric_is_a_regression(self):
        pruned = copy.deepcopy(KERNEL)
        del pruned["C@2048"]["events_per_sec"]
        report = compare_payloads(KERNEL, pruned)
        assert not report.ok
        assert "missing" in report.regressions[0].detail

    def test_missing_workload_is_a_regression(self):
        report = compare_payloads(KERNEL, {})
        assert not report.ok
        assert "workload missing" in report.regressions[0].detail

    def test_peak_rss_gets_a_doubled_band(self):
        """Memory high-water marks wobble; only clear bloat fails."""
        baseline = {"C@64-sharded2": {"peak_rss_mb": 100.0}}
        wobbled = {"C@64-sharded2": {"peak_rss_mb": 150.0}}  # +50% < 60%
        assert compare_payloads(baseline, wobbled).ok
        bloated = {"C@64-sharded2": {"peak_rss_mb": 170.0}}  # +70% > 60%
        report = compare_payloads(baseline, bloated)
        assert not report.ok
        (finding,) = report.regressions
        assert finding.path == "C@64-sharded2.peak_rss_mb"

    def test_vector_speedup_dropping_beyond_the_band_fails(self):
        baseline = {"C@131072-sharded16-vector": {
            "vector_speedup_vs_interp": 1.5,
        }}
        regressed = {"C@131072-sharded16-vector": {
            "vector_speedup_vs_interp": 0.9,  # -40% > 30% band
        }}
        assert not compare_payloads(baseline, regressed).ok

    def test_tolerance_is_configurable(self):
        wobbled = copy.deepcopy(KERNEL)
        wobbled["C@2048"]["events_per_sec"] *= 0.8
        assert not compare_payloads(KERNEL, wobbled, tolerance=0.1).ok
        assert compare_payloads(
            KERNEL, wobbled, tolerance=DEFAULT_TOLERANCE
        ).ok


class TestFilesAndDirectories:
    def test_file_mode(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(KERNEL))
        regressed = copy.deepcopy(KERNEL)
        regressed["C@2048"]["events_per_sec"] *= 0.5
        cur.write_text(json.dumps(regressed))
        assert not compare_files(base, cur).ok

    def test_directory_mode_compares_every_bench_file(self, tmp_path):
        baseline = tmp_path / "baseline"
        baseline.mkdir()
        for name in (
            "BENCH_kernel.json", "BENCH_verify.json", "BENCH_faults.json"
        ):
            (baseline / name).write_text((REPO / name).read_text())
        report = compare_files(baseline, REPO)
        assert report.ok
        files = {f.file for f in report.findings}
        assert files == {
            "BENCH_kernel.json", "BENCH_verify.json", "BENCH_faults.json"
        }

    def test_deleted_bench_file_is_a_regression(self, tmp_path):
        baseline = tmp_path / "baseline"
        current = tmp_path / "current"
        baseline.mkdir()
        current.mkdir()
        (baseline / "BENCH_kernel.json").write_text(json.dumps(KERNEL))
        report = compare_files(baseline, current)
        assert not report.ok
        assert "BENCH file missing" in report.regressions[0].detail


class TestRepoSnapshots:
    """The committed BENCH files themselves must satisfy the gate."""

    def test_self_comparison_of_committed_snapshots_passes(self):
        report = compare_files(REPO, REPO)
        assert report.ok
        # Sanity: the walk actually finds the headline metrics.
        paths = {f.path for f in report.findings}
        assert "C@2048.events_per_sec" in paths
        assert "A@6.states_per_sec" in paths
        assert any(p.startswith("checks.") for p in paths)


class TestCLI:
    def test_exit_zero_on_clean_comparison(self, capsys):
        assert main(["--baseline", str(REPO), "--current", str(REPO)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(KERNEL))
        regressed = copy.deepcopy(KERNEL)
        regressed["C@2048"]["speedup_vs_seed"] = 1.0
        cur.write_text(json.dumps(regressed))
        code = main(
            ["--baseline", str(base), "--current", str(cur)]
        )
        assert code == 1
        assert "regression" in capsys.readouterr().out
