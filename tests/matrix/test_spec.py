"""Unit tests for the declarative scenario-spec model."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.matrix.spec import (
    MatrixCell,
    ScenarioSpec,
    build_protocol,
    cell_rejection,
    curated_specs,
    expand,
    expand_specs,
    family_seed,
    load_specs,
    parse_csv,
    parse_toml,
    protocol_takes_k,
    restrict_for_quick,
    specs_to_csv,
    specs_to_toml,
    validate_spec,
)


def spec(**overrides) -> ScenarioSpec:
    base = dict(
        tag="t", protocols=("E",), scenarios=("benign",), ns=(8,),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestValidation:
    def test_a_minimal_row_validates(self):
        validate_spec(spec())

    def test_unknown_protocol_is_rejected_at_load(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            validate_spec(spec(protocols=("E", "Z")))

    def test_unknown_scenario_is_rejected_at_load(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            validate_spec(spec(scenarios=("nope",)))

    @pytest.mark.parametrize("axis", ["protocols", "scenarios", "ns"])
    def test_empty_axes_are_rejected(self, axis):
        with pytest.raises(ConfigurationError, match="non-empty"):
            validate_spec(spec(**{axis: ()}))

    def test_duplicate_axis_values_are_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicates"):
            validate_spec(spec(ns=(8, 8)))

    def test_symmetry_requires_verify_ns(self):
        with pytest.raises(ConfigurationError, match="verify_ns"):
            validate_spec(spec(symmetry="census"))

    def test_fuzz_schedules_requires_fuzz_ns(self):
        with pytest.raises(ConfigurationError, match="fuzz_ns"):
            validate_spec(spec(fuzz_schedules=10))

    def test_fuzz_ns_requires_fuzz_schedules(self):
        with pytest.raises(ConfigurationError, match="fuzz_schedules"):
            validate_spec(spec(fuzz_ns=(4,)))

    def test_tiny_network_sizes_are_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 2"):
            validate_spec(spec(ns=(1,)))


class TestCapabilityGate:
    """`symmetry = "prune"` is refused at spec load for every protocol the
    linter-derived capability table cannot prove equivariant — all
    fourteen paper protocols compare identities, so prune is a spec bug
    here, caught before a single cell runs."""

    @pytest.mark.parametrize("protocol", ["A", "C", "E", "G", "FT"])
    def test_prune_is_rejected_for_id_comparing_protocols(self, protocol):
        with pytest.raises(ConfigurationError, match="not\\s+outcome-sound"):
            validate_spec(
                spec(
                    protocols=(protocol,), symmetry="prune", verify_ns=(3,)
                )
            )

    def test_census_is_always_allowed(self):
        validate_spec(spec(symmetry="census", verify_ns=(3,)))

    def test_unknown_symmetry_mode_is_rejected(self):
        with pytest.raises(ConfigurationError, match="symmetry must be"):
            validate_spec(spec(symmetry="orbit", verify_ns=(3,)))


class TestExpansion:
    def test_expansion_is_the_exact_cross_product(self):
        row = spec(
            protocols=("E", "D"), scenarios=("benign", "lossy"),
            ns=(4, 8), seeds=(0, 1, 2),
        )
        cells = expand(row)
        assert len(cells) == 2 * 2 * 2 * 3
        assert len(set(cells)) == len(cells)

    def test_empty_k_axis_means_one_default_k_cell(self):
        assert all(cell.k is None for cell in expand(spec()))

    def test_k_axis_multiplies_cells(self):
        row = spec(protocols=("G",), ns=(16,), ks=(2, 4))
        assert [cell.k for cell in expand(row)] == [2, 4]

    def test_cell_ids_are_unique_within_a_row(self):
        row = spec(
            protocols=("F", "G"), scenarios=("benign", "chain"),
            ns=(8, 16), seeds=(0, 1), ks=(2, 4),
        )
        ids = [cell.cell_id for cell in expand(row)]
        assert len(set(ids)) == len(ids)


class TestFiltering:
    def test_sense_protocol_under_port_adversary_is_filtered(self):
        cell = MatrixCell("t", "C", "adversarial_ports", 16, 0)
        assert "unlabeled" in cell_rejection(cell)

    def test_small_n_under_port_adversary_is_filtered(self):
        cell = MatrixCell("t", "E", "adversarial_ports", 6, 0)
        assert "too small" in cell_rejection(cell)

    def test_k_on_a_protocol_without_k_is_filtered(self):
        cell = MatrixCell("t", "E", "benign", 8, 0, k=2)
        assert "no k parameter" in cell_rejection(cell)

    def test_k_exceeding_n_minus_one_is_filtered(self):
        cell = MatrixCell("t", "G", "benign", 4, 0, k=5)
        assert "exceeds" in cell_rejection(cell)

    def test_protocol_validate_constraints_are_filtered(self):
        # B requires a power-of-two N; the filter probes validate().
        cell = MatrixCell("t", "B", "benign", 6, 0)
        assert "power of two" in cell_rejection(cell)

    def test_legal_cells_pass(self):
        assert cell_rejection(MatrixCell("t", "E", "lossy", 8, 0)) is None

    def test_expand_specs_splits_legal_from_rejected(self):
        rows = [
            spec(protocols=("C", "E"), scenarios=("adversarial_ports",),
                 ns=(16,))
        ]
        legal, rejected = expand_specs(rows)
        assert [c.protocol for c in legal] == ["E"]
        assert [c.protocol for c, _ in rejected] == ["C"]

    def test_strict_mode_raises_instead_of_filtering(self):
        rows = [spec(protocols=("C",), scenarios=("adversarial_ports",),
                     ns=(16,))]
        with pytest.raises(ConfigurationError, match="illegal cell"):
            expand_specs(rows, filter=False)


class TestSeedFamily:
    """The `seed_family` axis: randomized (`uses_ctx_rng`) protocols must
    name the coin universe their cells sample, and the seeds axis then
    holds family *indices* whose run seeds are derived, not raw."""

    def test_randomized_cell_without_a_family_is_filtered(self):
        reason = cell_rejection(MatrixCell("t", "RS", "benign", 16, 0))
        assert "seed_family" in reason
        assert "uses_ctx_rng" in reason

    def test_randomized_cell_with_a_family_passes(self):
        cell = MatrixCell("t", "RT", "benign", 16, 0, seed_family="fam")
        assert cell_rejection(cell) is None

    def test_deterministic_cells_ignore_the_axis(self):
        assert cell_rejection(MatrixCell("t", "E", "benign", 8, 0)) is None
        labelled = MatrixCell("t", "E", "benign", 8, 0, seed_family="fam")
        assert cell_rejection(labelled) is None

    def test_expansion_derives_seeds_from_the_family(self):
        row = spec(protocols=("RS",), ns=(16,), seeds=(0, 1, 2),
                   seed_family="fam")
        cells = expand(row)
        assert [c.seed for c in cells] == [
            family_seed("fam", i) for i in (0, 1, 2)
        ]
        assert all(c.seed_family == "fam" for c in cells)
        # Derived seeds are scrambled, not the raw indices.
        assert set(c.seed for c in cells) != {0, 1, 2}

    def test_family_seeds_are_stable_and_collision_free(self):
        assert family_seed("fam", 7) == family_seed("fam", 7)
        drawn = {family_seed("fam", i) for i in range(50)}
        drawn |= {family_seed("other", i) for i in range(50)}
        assert len(drawn) == 100

    def test_distinct_families_give_distinct_cell_ids(self):
        a = expand(spec(protocols=("RS",), ns=(16,), seed_family="a"))
        b = expand(spec(protocols=("RS",), ns=(16,), seed_family="b"))
        assert a[0].seed != b[0].seed

    def test_empty_family_name_is_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            validate_spec(spec(seed_family=""))

    def test_verify_ns_is_refused_for_ctx_rng_protocols(self):
        with pytest.raises(ConfigurationError, match="verify --stat"):
            validate_spec(
                spec(protocols=("RS",), ns=(16,), seed_family="fam",
                     symmetry="census", verify_ns=(3,))
            )

    def test_fuzz_ns_is_refused_for_ctx_rng_protocols(self):
        with pytest.raises(ConfigurationError, match="uses_ctx_rng"):
            validate_spec(
                spec(protocols=("RT",), ns=(16,), seed_family="fam",
                     fuzz_ns=(4,), fuzz_schedules=8)
            )

    def test_prune_is_refused_for_ctx_rng_protocols(self):
        # Per-node streams are seeded by identity, so relabelling
        # changes future coin flips — prune cannot be outcome-sound.
        with pytest.raises(ConfigurationError, match="not sound"):
            validate_spec(
                spec(protocols=("RS",), ns=(16,), seed_family="fam",
                     symmetry="prune", verify_ns=(3,))
            )

    def test_round_trips_preserve_the_family(self):
        row = spec(protocols=("RS", "RT"), ns=(16, 32), seeds=(0, 1),
                   seed_family="curated-rand")
        assert parse_toml(specs_to_toml([row])) == [row]
        assert parse_csv(specs_to_csv([row])) == [row]

    def test_quick_restriction_preserves_the_family(self):
        row = spec(protocols=("RS",), ns=(16, 64), seed_family="fam")
        (quick,) = restrict_for_quick([row])
        assert quick.seed_family == "fam"
        assert max(quick.ns) <= 32

    def test_curated_randomized_rows_carry_families(self):
        rand_rows = [
            s for s in curated_specs()
            if any(p in ("RS", "RT") for p in s.protocols)
        ]
        assert rand_rows
        seeded = [s for s in rand_rows if s.seed_family is not None]
        assert seeded, "curated slice should exercise the seed_family axis"
        unseeded = [s for s in rand_rows if s.seed_family is None]
        assert unseeded, "curated slice should demonstrate the rejection"
        _, rejected = expand_specs(unseeded)
        assert all("seed_family" in reason for _, reason in rejected)


class TestSerialisation:
    def test_toml_parse_error_names_the_source(self):
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            parse_toml("not [ toml", source="bad.toml")

    def test_toml_without_spec_tables_is_rejected(self):
        with pytest.raises(ConfigurationError, match="spec"):
            parse_toml("x = 1")

    def test_unknown_toml_field_is_rejected(self):
        text = '[[spec]]\ntag = "t"\nprotocols = ["E"]\n' \
               'scenarios = ["benign"]\nns = [8]\nbogus = 1\n'
        with pytest.raises(ConfigurationError, match="bogus"):
            parse_toml(text)

    def test_csv_bad_integer_is_rejected_with_location(self):
        text = "tag,protocols,scenarios,ns\nt,E,benign,eight\n"
        with pytest.raises(ConfigurationError, match="row #1"):
            parse_csv(text)

    def test_csv_unknown_column_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown column"):
            parse_csv("tag,wat\nt,1\n")

    def test_load_specs_dispatches_on_extension(self, tmp_path):
        row = spec(protocols=("E", "D"), seeds=(0, 3))
        toml_file = tmp_path / "s.toml"
        toml_file.write_text(specs_to_toml([row]))
        csv_file = tmp_path / "s.csv"
        csv_file.write_text(specs_to_csv([row]))
        assert load_specs(toml_file) == [row]
        assert load_specs(csv_file) == [row]


class TestCurated:
    def test_curated_slice_loads_and_validates(self):
        specs = curated_specs()
        assert len(specs) >= 4
        tags = [s.tag for s in specs]
        assert len(set(tags)) == len(tags)

    def test_curated_slice_covers_every_protocol(self):
        from repro.core.protocol import registered_protocols

        covered = {p for s in curated_specs() for p in s.protocols}
        assert covered == set(registered_protocols())

    def test_curated_slice_covers_every_scenario(self):
        from repro.harness.scenarios import SCENARIOS

        covered = {sc for s in curated_specs() for sc in s.scenarios}
        assert covered == set(SCENARIOS)

    def test_curated_slice_exercises_the_filter(self):
        _, rejected = expand_specs(curated_specs())
        assert rejected, "curated slice should demonstrate cell filtering"

    def test_quick_restriction_keeps_every_row(self):
        specs = curated_specs()
        quick = restrict_for_quick(specs)
        assert len(quick) == len(specs)
        assert all(max(s.ns) <= 32 for s in quick)
        assert all(s.fuzz_schedules <= 16 for s in quick)
        for row in quick:
            validate_spec(row)


class TestProtocolHelpers:
    def test_protocol_takes_k_matches_the_registry(self):
        assert protocol_takes_k("G")
        assert protocol_takes_k("A")
        assert not protocol_takes_k("E")
        assert not protocol_takes_k("FT")

    def test_build_protocol_passes_k_through(self):
        cell = MatrixCell("t", "G", "benign", 16, 0, k=4)
        assert build_protocol(cell).k == 4

    def test_build_protocol_defaults_without_k(self):
        cell = MatrixCell("t", "E", "benign", 16, 0)
        assert type(build_protocol(cell)).name == "E"
