"""Tests for the matrix sweep runner and its aggregate report."""

from __future__ import annotations

import json

import pytest

from repro.matrix.runner import (
    FT_ENVELOPE_RELIABLE,
    MatrixReport,
    CellResult,
    run_matrix,
)
from repro.matrix.spec import MatrixCell, ScenarioSpec


def small_specs() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            tag="unit",
            protocols=("E", "G"),
            scenarios=("worst_case",),
            ns=(8, 16),
        )
    ]


@pytest.fixture(scope="module")
def report():
    return run_matrix(small_specs(), parallel=False)


class TestRunMatrix:
    def test_runs_every_legal_cell(self, report):
        assert len(report.cells) == 4
        assert not report.rejected

    def test_every_check_passes_on_the_small_sweep(self, report):
        assert report.passed
        names = [c.name for c in report.checks]
        assert any("elected" in n for n in names)
        assert any("non-decreasing" in n for n in names)

    def test_results_arrive_in_cell_order(self, report):
        keys = [(r.cell.protocol, r.cell.n) for r in report.cells]
        assert keys == [("E", 8), ("E", 16), ("G", 8), ("G", 16)]

    def test_digest_is_stable_across_calls(self, report):
        again = run_matrix(small_specs(), parallel=False)
        assert report.digest() == again.digest()

    def test_raise_if_failed_is_silent_on_success(self, report):
        report.raise_if_failed()


class TestOutputLayout:
    def test_snippet_layout_is_written(self, tmp_path):
        report = run_matrix(small_specs(), outdir=tmp_path, parallel=False)
        cell = report.cells[0].cell
        cell_dir = tmp_path / "cells" / cell.tag / cell.cell_id
        config = json.loads((cell_dir / "config_used.json").read_text())
        assert config["protocol"] == cell.protocol
        assert config["n"] == cell.n
        result = json.loads((cell_dir / "result.json").read_text())
        assert result == report.cells[0].fingerprint
        aggregate = json.loads((tmp_path / "matrix_report.json").read_text())
        assert aggregate == report.payload()
        assert (tmp_path / "matrix_report.md").read_text().startswith(
            "# Matrix sweep report"
        )


class TestChecks:
    def _fake_report(self, points):
        """A report with synthetic (n, messages) cells in one group."""
        report = MatrixReport(
            cells=[
                CellResult(
                    MatrixCell("t", "E", "benign", n, 0),
                    {
                        "n": n, "leader_id": n - 1, "leader_position": 0,
                        "elected_at": 1.0, "election_time": 1.0,
                        "messages_total": messages, "bits_total": 0,
                        "messages_by_type": {}, "max_channel_load": 1,
                    },
                )
                for n, messages in points
            ]
        )
        return report

    def test_monotonicity_violation_fails_the_check(self):
        from repro.matrix.runner import _check_monotonicity

        report = self._fake_report([(8, 100), (16, 50)])
        _check_monotonicity(report)
        (check,) = report.checks
        assert not check.passed
        assert "N=8→16" in check.detail

    def test_small_dips_stay_inside_the_band(self):
        from repro.matrix.runner import _check_monotonicity

        report = self._fake_report([(8, 100), (16, 97)])
        _check_monotonicity(report)
        assert report.checks[0].passed

    def test_ft_envelope_flags_a_blown_constant(self):
        from repro.matrix.runner import _check_ft_envelope

        n = 16
        blown = int(FT_ENVELOPE_RELIABLE * n * 4 * 10)
        report = MatrixReport(
            cells=[
                CellResult(
                    MatrixCell("t", "FT", "benign", n, 0),
                    {
                        "n": n, "leader_id": 1, "leader_position": 0,
                        "elected_at": 1.0, "election_time": 1.0,
                        "messages_total": blown, "bits_total": 0,
                        "messages_by_type": {}, "max_channel_load": 1,
                    },
                )
            ]
        )
        _check_ft_envelope(report)
        (check,) = report.checks
        assert not check.passed

    def test_failed_checks_raise_with_details(self):
        report = self._fake_report([(8, 100), (16, 50)])
        from repro.matrix.runner import _check_monotonicity

        _check_monotonicity(report)
        with pytest.raises(AssertionError, match="failed checks"):
            report.raise_if_failed()


class TestBaselineDeltas:
    def test_deltas_against_a_previous_payload(self):
        baseline = run_matrix(small_specs(), parallel=False)
        payload = baseline.payload()
        # Synthetically inflate one metric in the baseline copy.
        key = next(iter(payload["cells"]))
        payload["cells"][key]["messages_total"] += 40
        report = run_matrix(
            small_specs(), parallel=False, baseline=payload
        )
        deltas = [
            d for d in report.baseline_deltas
            if d["cell"] == key and d["metric"] == "messages_total"
        ]
        assert len(deltas) == 1
        assert deltas[0]["delta_pct"] < 0

    def test_no_deltas_against_an_identical_baseline(self):
        baseline = run_matrix(small_specs(), parallel=False)
        report = run_matrix(
            small_specs(), parallel=False, baseline=baseline.payload()
        )
        assert report.baseline_deltas == []

    def test_deltas_do_not_perturb_the_check_verdict(self):
        baseline = run_matrix(small_specs(), parallel=False).payload()
        report = run_matrix(small_specs(), parallel=False, baseline=baseline)
        assert report.passed
