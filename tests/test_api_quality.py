"""API quality meta-tests.

A library claiming "documented public API" should be able to prove it:
these tests walk the whole ``repro`` package and enforce docstrings on
every public module, class and function, plus a few public-surface
consistency rules.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__main__" not in name
)


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} is missing a module docstring"
    )


@pytest.mark.parametrize("module_name", MODULES)
def test_every_public_symbol_is_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented at their definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                doc = method.__doc__ or ""
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and (getattr(base, method_name).__doc__ or "").strip()
                    for base in obj.__mro__[1:]
                )
                if not doc.strip() and not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public symbols: {undocumented}"
    )


def test_public_api_is_importable_and_complete():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_every_registered_protocol_is_exported():
    from repro.core.protocol import registered_protocols

    exported_names = {
        getattr(repro, name).name
        for name in repro.__all__
        if hasattr(getattr(repro, name, None), "name")
        and isinstance(getattr(getattr(repro, name), "name", None), str)
    }
    for key in registered_protocols():
        assert key in exported_names, f"protocol {key} not exported in repro"
