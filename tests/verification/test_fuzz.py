"""Tests for the schedule fuzzer.

The fuzzer's contract: deterministic given a seed, every run checked for
safety/liveness/validity, and every violation carried as a replayable
trace.  The planted-bug tests prove the whole find -> shrink -> replay
pipeline on a real protocol with a real (planted) interleaving bug.
"""

from __future__ import annotations

import pytest

from repro.core.node import Node
from repro.core.protocol import ElectionProtocol
from repro.protocols.sense.protocol_a import ProtocolA
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import (
    DEFAULT_FAMILIES,
    fuzz_protocol,
    replay_trace,
    shrink_trace,
)


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        topology = complete_with_sense_of_direction(5)
        a = fuzz_protocol(ProtocolA(), topology, schedules=24, seed=7)
        b = fuzz_protocol(ProtocolA(), topology, schedules=24, seed=7)
        assert str(a) == str(b)
        assert a.steps_total == b.steps_total
        assert a.leaders_seen == b.leaders_seen
        assert [v.trace for v in a.violations] == [
            v.trace for v in b.violations
        ]

    def test_violating_trace_is_reproducible(self, buggy_protocol):
        topology = complete_with_sense_of_direction(6)
        a = fuzz_protocol(buggy_protocol, topology, schedules=50, seed=0)
        b = fuzz_protocol(buggy_protocol, topology, schedules=50, seed=0)
        assert not a.ok and not b.ok
        assert a.violations[0].trace == b.violations[0].trace


class TestCleanProtocols:
    def test_protocol_a_survives_all_families(self):
        report = fuzz_protocol(
            ProtocolA(), complete_with_sense_of_direction(5),
            schedules=40, seed=1,
        )
        assert report.ok
        assert report.runs == 40
        # all four adversary families actually ran
        assert set(report.runs_per_family) == {
            policy.family for policy in DEFAULT_FAMILIES
        }
        # adversarial scheduling surfaces more than one possible winner
        assert len(report.leaders_seen) > 1

    def test_truncation_is_counted_not_hidden(self):
        report = fuzz_protocol(
            ProtocolA(), complete_with_sense_of_direction(5),
            schedules=4, seed=0, max_steps=3,
        )
        assert report.truncated_runs == 4
        assert report.ok  # a truncated run is not a violation


class TestPlantedSafetyBug:
    """The acceptance pipeline: find, shrink to <= half, replay."""

    def test_fuzzer_finds_the_planted_bug(self, buggy_protocol):
        report = fuzz_protocol(
            buggy_protocol, complete_with_sense_of_direction(6),
            schedules=200, seed=0,
        )
        assert not report.ok
        violation = report.violations[0]
        assert violation.kind == "safety"
        assert "two leaders" in violation.message

    def test_shrinks_to_at_most_half(self, buggy_protocol):
        report = fuzz_protocol(
            buggy_protocol, complete_with_sense_of_direction(6),
            schedules=200, seed=0,
        )
        trace = report.violations[0].trace
        shrunk = shrink_trace(trace, buggy_protocol)
        assert 2 * len(shrunk.choices) <= len(trace.choices)
        outcome = replay_trace(shrunk, buggy_protocol)
        assert outcome.violation_kind == "safety"
        assert "two leaders" in outcome.violation

    def test_minimal_repro_is_ten_steps(self, buggy_protocol):
        # 2 wakes + 2x(Capture, Accept) per candidate = 10 actions is the
        # smallest schedule that makes two disjoint-window candidates
        # reach level 2; shrinking should land on it (or very close).
        report = fuzz_protocol(
            buggy_protocol, complete_with_sense_of_direction(6),
            schedules=200, seed=0,
        )
        shrunk = shrink_trace(report.violations[0].trace, buggy_protocol)
        assert len(shrunk.choices) <= 12


class _SilentNode(Node):
    def on_wake(self, spontaneous):
        pass

    def on_message(self, port, message):
        pass


class _Silent(ElectionProtocol):
    name = "silent-fuzz-test"

    def create_node(self, ctx):
        return _SilentNode(ctx)


class _EagerFollowerNode(Node):
    def on_wake(self, spontaneous):
        if spontaneous:
            from repro.core.messages import Wakeup

            self.ctx.send(0, Wakeup())

    def on_message(self, port, message):
        if not self.is_base:
            self.become_leader()


class _EagerFollower(ElectionProtocol):
    name = "eager-fuzz-test"

    def create_node(self, ctx):
        return _EagerFollowerNode(ctx)


class TestOtherViolationKinds:
    def test_liveness_violation_is_detected(self):
        report = fuzz_protocol(
            _Silent(), complete_without_sense(3, seed=0),
            schedules=4, seed=0,
        )
        assert not report.ok
        assert report.violations[0].kind == "liveness"

    def test_validity_violation_is_detected(self):
        report = fuzz_protocol(
            _EagerFollower(), complete_without_sense(3, seed=0),
            schedules=4, seed=0, base_positions=(0,),
        )
        assert not report.ok
        assert report.violations[0].kind == "validity"

    def test_stop_at_first_false_collects_many(self):
        report = fuzz_protocol(
            _Silent(), complete_without_sense(3, seed=0),
            schedules=6, seed=0, stop_at_first=False,
        )
        assert len(report.violations) == 6
        assert report.runs == 6


class TestReportRendering:
    def test_str_mentions_verdict(self, buggy_protocol):
        clean = fuzz_protocol(
            ProtocolA(), complete_with_sense_of_direction(4),
            schedules=8, seed=0,
        )
        assert "ok" in str(clean)
        dirty = fuzz_protocol(
            buggy_protocol, complete_with_sense_of_direction(6),
            schedules=200, seed=0,
        )
        assert "VIOLATION" in str(dirty)


@pytest.mark.parametrize("policy", DEFAULT_FAMILIES, ids=lambda p: p.family)
def test_every_family_alone_completes_elections(policy):
    report = fuzz_protocol(
        ProtocolA(), complete_with_sense_of_direction(4),
        schedules=10, seed=3, families=(policy,),
    )
    assert report.ok
    assert report.runs_per_family == {policy.family: 10}
