"""Cross-validation: reduced exploration loses no outcomes.

A reduction is only worth anything if it is *sound*: every verdict the
reduced search produces must be the verdict the unreduced search would
have produced.  These tests cross-validate each reduction layer against
its reference search for **every** registered protocol, asserting the
observable outcome sets are identical:

* the set of quiescent outcomes ``(leader_id, messages_sent)``,
* the set of possible leaders,
* the number of distinct quiescent configurations.

(The *state* and *transition* counts are exactly what a reduction is
allowed to change, and the companion assertion is that it only ever
shrinks them.)  The layers, each against the one below it:

* ``por=True`` vs ``por=False`` — sleep sets + stale-wake merging;
* ``compress=True`` vs ``compress=False`` — inert-delivery compression,
  whose stale-monotonicity assumption is exactly what this exhaustive
  per-protocol comparison validates;
* ``workers=K`` vs serial — the stratified parallel search (further
  covered in ``test_parallel_explore.py``);
* ``symmetry="census"`` vs off — the census must observe the search, not
  change it.  (``symmetry="prune"`` is deliberately absent: it is a
  bug-hunting mode that does *not* promise outcome completeness — the
  boundary ``test_symmetry.py`` pins.)
"""

from __future__ import annotations

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.protocol import registered_protocols
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import explore_protocol
from tests.verification.conftest import deterministic_protocols

#: Smallest interesting instance per protocol: N=3, except the tournament
#: protocols B and C which require a power-of-two network.
_POWER_OF_TWO_ONLY = {"B", "C"}


def _instance(name, cls):
    n = 4 if name in _POWER_OF_TWO_ONLY else 3
    if cls.needs_sense_of_direction:
        return cls(), complete_with_sense_of_direction(n)
    return cls(), complete_without_sense(n, seed=0)


@pytest.mark.parametrize(
    "name", deterministic_protocols(), ids=str
)
def test_por_preserves_all_outcomes(name):
    protocol, topology = _instance(name, registered_protocols()[name])
    pruned = explore_protocol(protocol, topology, por=True)
    full = explore_protocol(protocol, topology, por=False)
    assert pruned.complete and full.complete
    assert pruned.quiescent_outcomes == full.quiescent_outcomes
    assert pruned.leaders_seen == full.leaders_seen
    assert pruned.terminal_states == full.terminal_states
    # the reduction may only ever shrink the search
    assert pruned.states_explored <= full.states_explored
    assert pruned.transitions <= full.transitions


@pytest.mark.parametrize(
    "name", deterministic_protocols(), ids=str
)
def test_compression_preserves_all_outcomes(name):
    """Inert-delivery compression vs the sleep-set-only reference.

    ``compress=False`` is the PR 1 search; equality here is the
    exhaustive validation of the stale-monotonicity assumption for this
    protocol (see the compression notes in ``explore.py``).
    """
    protocol, topology = _instance(name, registered_protocols()[name])
    compressed = explore_protocol(protocol, topology, compress=True)
    reference = explore_protocol(protocol, topology, compress=False)
    assert compressed.complete and reference.complete
    assert compressed.quiescent_outcomes == reference.quiescent_outcomes
    assert compressed.leaders_seen == reference.leaders_seen
    assert compressed.terminal_states == reference.terminal_states
    assert compressed.states_explored <= reference.states_explored
    # compression actually fired (every protocol here has inert traffic
    # or stale wake-ups at these sizes)
    assert compressed.compressed_steps > 0


@pytest.mark.parametrize(
    "name", deterministic_protocols(), ids=str
)
def test_parallel_strata_preserve_all_outcomes(name):
    protocol, topology = _instance(name, registered_protocols()[name])
    serial = explore_protocol(protocol, topology)
    parallel = explore_protocol(protocol, topology, workers=2)
    assert parallel.complete
    assert parallel.states_explored == serial.states_explored
    assert parallel.quiescent_outcomes == serial.quiescent_outcomes
    assert parallel.leaders_seen == serial.leaders_seen
    assert parallel.terminal_states == serial.terminal_states


@pytest.mark.parametrize(
    "name", deterministic_protocols(), ids=str
)
def test_census_observes_without_changing_the_search(name):
    protocol, topology = _instance(name, registered_protocols()[name])
    plain = explore_protocol(protocol, topology)
    census = explore_protocol(protocol, topology, symmetry="census")
    assert census.states_explored == plain.states_explored
    assert census.quiescent_outcomes == plain.quiescent_outcomes
    assert census.terminal_states == plain.terminal_states
    assert census.canonical_states is not None
    assert 0 < census.canonical_states <= census.states_explored


def test_por_preserves_outcomes_with_partial_wakeups():
    # base-node subsets exercise the stale-wake compression differently:
    # passive nodes never have a pending wake to compress.
    from repro.protocols.nosense.protocol_g import ProtocolG

    topology = complete_without_sense(4, seed=0)
    pruned = explore_protocol(
        ProtocolG(k=2), topology, base_positions=(0, 1), por=True
    )
    full = explore_protocol(
        ProtocolG(k=2), topology, base_positions=(0, 1), por=False
    )
    assert pruned.quiescent_outcomes == full.quiescent_outcomes
    assert pruned.leaders_seen == full.leaders_seen
    assert pruned.terminal_states == full.terminal_states
