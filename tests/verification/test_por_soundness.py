"""Cross-validation: POR-pruned exploration loses no outcomes.

Partial-order reduction is only worth anything if it is *sound*: every
verdict the pruned search produces must be the verdict the unpruned search
would have produced.  These tests run :func:`explore_protocol` twice on
the same instance — ``por=True`` and ``por=False`` — for **every**
registered protocol and assert the observable outcome sets are identical:

* the set of quiescent outcomes ``(leader_id, messages_sent)``,
* the set of possible leaders,
* the number of distinct quiescent configurations.

(The *state* and *transition* counts are exactly what POR is allowed to
change, and the companion assertion is that it only ever shrinks them.)
"""

from __future__ import annotations

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.protocol import registered_protocols
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import explore_protocol

#: Smallest interesting instance per protocol: N=3, except the tournament
#: protocols B and C which require a power-of-two network.
_POWER_OF_TWO_ONLY = {"B", "C"}


def _instance(name, cls):
    n = 4 if name in _POWER_OF_TWO_ONLY else 3
    if cls.needs_sense_of_direction:
        return cls(), complete_with_sense_of_direction(n)
    return cls(), complete_without_sense(n, seed=0)


@pytest.mark.parametrize(
    "name", sorted(registered_protocols()), ids=str
)
def test_por_preserves_all_outcomes(name):
    protocol, topology = _instance(name, registered_protocols()[name])
    pruned = explore_protocol(protocol, topology, por=True)
    full = explore_protocol(protocol, topology, por=False)
    assert pruned.complete and full.complete
    assert pruned.quiescent_outcomes == full.quiescent_outcomes
    assert pruned.leaders_seen == full.leaders_seen
    assert pruned.terminal_states == full.terminal_states
    # the reduction may only ever shrink the search
    assert pruned.states_explored <= full.states_explored
    assert pruned.transitions <= full.transitions


def test_por_preserves_outcomes_with_partial_wakeups():
    # base-node subsets exercise the stale-wake compression differently:
    # passive nodes never have a pending wake to compress.
    from repro.protocols.nosense.protocol_g import ProtocolG

    topology = complete_without_sense(4, seed=0)
    pruned = explore_protocol(
        ProtocolG(k=2), topology, base_positions=(0, 1), por=True
    )
    full = explore_protocol(
        ProtocolG(k=2), topology, base_positions=(0, 1), por=False
    )
    assert pruned.quiescent_outcomes == full.quiescent_outcomes
    assert pruned.leaders_seen == full.leaders_seen
    assert pruned.terminal_states == full.terminal_states
