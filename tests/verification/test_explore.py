"""Tests for the exhaustive interleaving explorer.

The positive tests are the library's strongest correctness statement: for
these instances, *every* reachable interleaving of wake-ups and FIFO
deliveries elects exactly one valid leader.  The negative tests prove the
explorer actually catches violations (a checker that cannot fail checks
nothing).
"""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message
from repro.core.node import Node
from repro.core.protocol import ElectionProtocol
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.hirschberg_sinclair import HirschbergSinclair
from repro.protocols.sense.lmw86 import LMW86
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import explore_protocol


class TestExhaustiveSafety:
    """Every interleaving of these instances is verified."""

    @pytest.mark.parametrize(
        "protocol,n",
        [
            (ProtocolA(), 3),
            (LMW86(), 3),
            (ProtocolC(), 4),
            (ChangRoberts(), 4),
            (HirschbergSinclair(), 3),
        ],
        ids=["A", "LMW86", "C", "CR", "HS"],
    )
    def test_sense_protocols_all_interleavings(self, protocol, n):
        report = explore_protocol(
            protocol, complete_with_sense_of_direction(n)
        )
        assert report.complete
        assert report.terminal_states > 0
        # every base node wins in SOME interleaving: the adversary can
        # always capture a not-yet-woken candidate first
        assert report.leaders_seen == set(range(n))

    @pytest.mark.parametrize(
        "protocol",
        [ProtocolD(), AfekGafni(), ProtocolE()],
        ids=["D", "AG85", "E"],
    )
    def test_unlabeled_protocols_all_interleavings(self, protocol):
        report = explore_protocol(protocol, complete_without_sense(3, seed=0))
        assert report.complete
        assert report.leaders_seen == {0, 1, 2}

    def test_g_with_two_base_nodes(self):
        report = explore_protocol(
            ProtocolG(k=2),
            complete_without_sense(4, seed=0),
            base_positions=(0, 1),
        )
        assert report.complete
        assert report.leaders_seen <= {0, 1}

    def test_fault_tolerant_with_two_base_nodes(self):
        report = explore_protocol(
            FaultTolerantElection(1),
            complete_without_sense(4, seed=0),
            base_positions=(0, 1),
        )
        assert report.complete
        assert report.leaders_seen <= {0, 1}

    def test_single_base_node_has_one_winner(self):
        report = explore_protocol(
            ProtocolE(), complete_without_sense(3, seed=0),
            base_positions=(1,),
        )
        assert report.complete
        assert report.leaders_seen == {1}


class _GreedyNode(Node):
    """Declares on wake — blatantly unsafe with two base nodes."""

    def on_wake(self, spontaneous):
        if spontaneous:
            self.become_leader()

    def on_message(self, port, message):
        pass


class _Greedy(ElectionProtocol):
    name = "greedy-explore-test"

    def create_node(self, ctx):
        return _GreedyNode(ctx)


class _SilentNode(Node):
    """Never does anything — blatantly non-live."""

    def on_wake(self, spontaneous):
        pass

    def on_message(self, port, message):
        pass


class _Silent(ElectionProtocol):
    name = "silent-explore-test"

    def create_node(self, ctx):
        return _SilentNode(ctx)


class _EagerFollowerNode(Node):
    """A passive node that declares when poked — invalid leader."""

    def on_wake(self, spontaneous):
        if spontaneous:
            from repro.core.messages import Wakeup

            self.ctx.send(0, Wakeup())

    def on_message(self, port, message):
        if not self.is_base:
            self.become_leader()


class _EagerFollower(ElectionProtocol):
    name = "eager-explore-test"

    def create_node(self, ctx):
        return _EagerFollowerNode(ctx)


class TestExplorerCatchesViolations:
    def test_double_declaration_is_caught(self):
        with pytest.raises(ProtocolViolation, match="two leaders"):
            explore_protocol(_Greedy(), complete_without_sense(3, seed=0))

    def test_missing_leader_is_caught(self):
        with pytest.raises(ProtocolViolation, match="no leader"):
            explore_protocol(_Silent(), complete_without_sense(2, seed=0))

    def test_non_base_leader_is_caught(self):
        with pytest.raises(ProtocolViolation, match="non-base"):
            explore_protocol(
                _EagerFollower(), complete_without_sense(3, seed=0),
                base_positions=(0,),
            )

    def test_truncation_is_reported_not_hidden(self):
        report = explore_protocol(
            ProtocolC(), complete_with_sense_of_direction(4), max_states=50
        )
        assert not report.complete


class TestDeterminism:
    def test_exploration_is_reproducible(self):
        a = explore_protocol(ProtocolA(), complete_with_sense_of_direction(3))
        b = explore_protocol(ProtocolA(), complete_with_sense_of_direction(3))
        assert (a.states_explored, a.terminal_states) == (
            b.states_explored, b.terminal_states
        )


class TestCrossEngineConsistency:
    """The timed simulator and the explorer are two execution engines for
    the same state machines; anything the simulator observes must be a
    state the exhaustive search also reached."""

    @pytest.mark.parametrize(
        "protocol_factory,sense",
        [(ProtocolA, True), (ProtocolE, False)],
        ids=["A", "E"],
    )
    def test_simulated_leaders_are_a_subset_of_explored_leaders(
        self, protocol_factory, sense
    ):
        from repro.sim.delays import UniformDelay
        from repro.sim.network import run_election

        n = 3
        if sense:
            explored = explore_protocol(
                protocol_factory(), complete_with_sense_of_direction(n)
            )
        else:
            explored = explore_protocol(
                protocol_factory(), complete_without_sense(n, seed=0)
            )
        simulated = set()
        for seed in range(20):
            topology = (
                complete_with_sense_of_direction(n)
                if sense
                else complete_without_sense(n, seed=0)
            )
            result = run_election(
                protocol_factory(), topology,
                delays=UniformDelay(0.05, 1.0), seed=seed,
            )
            simulated.add(result.leader_id)
        assert simulated <= explored.leaders_seen
