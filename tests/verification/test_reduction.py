"""The headline reduction claims, asserted with recorded counts.

Two acceptance-grade facts about the scaled checker:

* exhaustive exploration of Protocol A now *completes* at N=5 (the seed
  checker topped out at N=4), and
* on Protocol B at N=4 the reduced search visits **>= 10x fewer states**
  than the unpruned DFS over the execution tree — the literal "every
  interleaving" enumeration with nothing merged and nothing pruned.

``count_unpruned_interleavings`` is capped just above the 10x bound, so
the baseline proves the ratio without having to finish the (astronomical)
full tree.
"""

from __future__ import annotations

from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_b import ProtocolB
from repro.topology.complete import complete_with_sense_of_direction
from repro.verification import count_unpruned_interleavings, explore_protocol


def test_protocol_a_n5_completes_exhaustively():
    report = explore_protocol(
        ProtocolA(), complete_with_sense_of_direction(5), max_states=100_000
    )
    assert report.complete
    assert report.por
    # every base node wins under some schedule, as at smaller N
    assert report.leaders_seen == {0, 1, 2, 3, 4}
    assert report.terminal_states > 0


def test_por_beats_unpruned_dfs_by_10x_on_b4():
    topology = complete_with_sense_of_direction(4)
    reduced = explore_protocol(ProtocolB(), topology, por=True)
    assert reduced.complete

    bound = 10 * reduced.states_explored
    baseline = count_unpruned_interleavings(
        ProtocolB(), topology, max_states=bound
    )
    # the unpruned tree blows through ten times the reduced state count
    # long before finishing
    assert not baseline.complete
    assert baseline.states_explored > bound
    assert reduced.states_explored * 10 <= baseline.states_explored
