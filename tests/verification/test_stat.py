"""The statistical model checker: exact bounds, determinism, the gate.

Three layers, mirroring the module:

* the Clopper–Pearson arithmetic against known closed forms (all-success
  LCB is ``alpha**(1/n)``; the binomial tail against a direct sum);
* the Monte-Carlo campaign itself, at trial counts small enough for
  tier-1: byte-identical digests serial vs fork pool and rerun vs
  rerun (the ``stat_smoke`` reproducibility contract), failure
  wiring, and the trial-seed derivation from the named seed family;
* the CLI surface (``python -m repro verify --stat``).
"""

from __future__ import annotations

import math

import pytest

from repro.matrix.spec import family_seed
from repro.verification.stat import (
    binom_tail_ge,
    clopper_pearson_lower,
    clopper_pearson_upper,
    randomized_protocol_names,
    run_stat_trial,
    verify_stat,
)
from tests.sim.determinism_cases import assert_digest_stable


class TestClopperPearson:
    def test_all_successes_matches_the_closed_form(self):
        # With zero failures the LCB solves p^n = alpha exactly.
        for trials in (10, 100, 459, 600):
            expected = 0.01 ** (1.0 / trials)
            got = clopper_pearson_lower(trials, trials, 0.99)
            assert math.isclose(got, expected, abs_tol=1e-9), trials

    def test_459_trials_is_the_zero_failure_threshold(self):
        # The documented planning number: the smallest all-success run
        # certifying a 0.99 LCB at 0.99 confidence.
        assert clopper_pearson_lower(459, 459, 0.99) >= 0.99
        assert clopper_pearson_lower(458, 458, 0.99) < 0.99

    def test_zero_successes_and_degenerate_inputs(self):
        assert clopper_pearson_lower(0, 100, 0.99) == 0.0
        assert clopper_pearson_lower(0, 0, 0.99) == 0.0
        assert clopper_pearson_upper(0, 0, 0.99) == 1.0
        with pytest.raises(ValueError):
            clopper_pearson_lower(5, 10, 1.5)

    def test_lower_bound_is_conservative(self):
        # The defining property: at p = LCB, seeing >= k successes has
        # probability exactly alpha — so the tail at the bound is alpha.
        k, n, confidence = 95, 100, 0.95
        lcb = clopper_pearson_lower(k, n, confidence)
        assert math.isclose(
            binom_tail_ge(n, k, lcb), 1 - confidence, rel_tol=1e-6
        )
        assert lcb < k / n

    def test_upper_mirrors_lower(self):
        upper = clopper_pearson_upper(5, 100, 0.95)
        assert math.isclose(
            upper, 1.0 - clopper_pearson_lower(95, 100, 0.95), abs_tol=1e-12
        )

    def test_tail_against_a_direct_sum(self):
        n, p = 12, 0.3
        for k in range(0, n + 1):
            direct = sum(
                math.comb(n, i) * p**i * (1 - p) ** (n - i)
                for i in range(k, n + 1)
            )
            assert math.isclose(
                binom_tail_ge(n, k, p), direct, rel_tol=1e-12
            ), k

    def test_tail_edges(self):
        assert binom_tail_ge(10, 0, 0.5) == 1.0
        assert binom_tail_ge(10, 5, 0.0) == 0.0
        assert binom_tail_ge(10, 5, 1.0) == 1.0


class TestTrials:
    def test_trial_is_seed_deterministic(self):
        seed = family_seed("stat-v1/RS/benign/16", 0)
        first = run_stat_trial("RS", "benign", 16, seed)
        second = run_stat_trial("RS", "benign", 16, seed)
        assert first == second
        assert first["safe"]
        assert first["within_bound"]

    def test_different_trial_indices_draw_different_seeds(self):
        seeds = {
            family_seed("stat-v1/RS/benign/16", i) for i in range(50)
        }
        assert len(seeds) == 50

    def test_the_randomized_population_is_the_ctx_rng_protocols(self):
        assert randomized_protocol_names() == ["RS", "RT"]


class TestLeaderDistribution:
    """Different run seeds must spread the crown: a chi-squared check
    that leader positions are roughly uniform across seeds.  The fixed
    family-derived seed list makes this a deterministic regression pin —
    a stream-derivation bug that freezes or skews the coins fails it —
    not a flaky statistical test."""

    TRIALS = 240
    N = 16

    def _leader_counts(self, name: str) -> list[int]:
        from repro.core.protocol import protocol_class
        from repro.sim.network import run_election
        from repro.topology.complete import complete_without_sense

        cls = protocol_class(name)
        counts = [0] * self.N
        for i in range(self.TRIALS):
            seed = family_seed(f"chi2-v1/{name}", i)
            result = run_election(
                cls(), complete_without_sense(self.N, seed=seed), seed=seed
            )
            counts[result.leader_position] += 1
        return counts

    @pytest.mark.parametrize("name", ["RS", "RT"])
    def test_leader_positions_are_roughly_uniform(self, name):
        counts = self._leader_counts(name)
        expected = self.TRIALS / self.N
        stat = sum((c - expected) ** 2 / expected for c in counts)
        # Wilson-Hilferty chi-squared critical value, df = N - 1, at the
        # 0.001 level: uniform draws land under it with room to spare,
        # while a stuck stream (one position always wins) scores ~3600.
        df = self.N - 1
        z = 3.0902  # Phi^-1(0.999)
        crit = df * (1 - 2 / (9 * df) + z * math.sqrt(2 / (9 * df))) ** 3
        assert stat < crit, (
            f"{name} chi2={stat:.1f} >= {crit:.1f}; counts={counts}"
        )
        assert all(counts), (
            f"{name}: some position never wins across "
            f"{self.TRIALS} seeds: {counts}"
        )


@pytest.mark.stat_smoke
class TestCampaign:
    def test_digest_is_stable_across_pool_modes_and_reruns(self):
        # The stat_smoke CI contract: same family + trials + strata ->
        # byte-identical report, serial or forked, first run or rerun.
        digest = assert_digest_stable(
            lambda parallel: verify_stat(
                ns=(16,), trials=30, target=0.8, parallel=parallel
            ).digest(),
            label="verify --stat digest",
        )
        assert digest == verify_stat(
            ns=(16,), trials=30, target=0.8, parallel=False
        ).digest()

    def test_small_campaign_passes_and_reports_both_properties(self):
        report = verify_stat(ns=(16,), trials=30, target=0.8, parallel=False)
        assert report.passed
        assert [s.key for s in report.strata] == [
            "RS/benign@16", "RT/benign@16"
        ]
        for stratum in report.strata:
            assert stratum.safety_successes == 30
            assert stratum.bound_successes == 30
            assert stratum.messages_max > 0
        rendered = report.render()
        assert "Clopper-Pearson" in rendered
        assert report.digest() in rendered

    def test_unreachable_target_fails_the_report(self):
        # 30 all-success trials certify at most an ~0.858 LCB at 0.99
        # confidence, so a 0.99 target must fail — and must say why.
        report = verify_stat(
            ns=(16,), trials=30, target=0.99, parallel=False
        )
        assert not report.passed
        with pytest.raises(AssertionError, match="failed checks"):
            report.raise_if_failed()

    def test_payload_round_trips_through_json(self):
        import json

        report = verify_stat(
            protocols=["RS"], ns=(16,), trials=10, target=0.5,
            parallel=False,
        )
        assert json.loads(json.dumps(report.payload())) == report.payload()

    def test_rejects_nonpositive_trials(self):
        with pytest.raises(ValueError, match="trials"):
            verify_stat(ns=(16,), trials=0)


class TestCLI:
    def test_verify_stat_cli_runs_and_prints_the_report(self, capsys):
        from repro.__main__ import main

        code = main(
            ["verify", "--stat", "--trials", "10", "--target", "0.5",
             "--stat-ns", "16", "--stat-protocols", "RT"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Statistical verification report" in out
        assert "RT/benign@16" in out

    def test_verify_stat_cli_propagates_failure(self, capsys):
        from repro.__main__ import main

        code = main(
            ["verify", "--stat", "--trials", "10", "--target", "0.999",
             "--stat-ns", "16", "--stat-protocols", "RT"]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
