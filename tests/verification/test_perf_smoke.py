"""Explorer-throughput sanity check that rides in tier-1.

Companion to ``tests/sim/test_perf_smoke.py``: one small fixed workload
(exhaustive Protocol A at N=4, ~1k states), a conservative states/sec
floor far below what the checker actually sustains (~25k/sec here vs the
~17k/sec of the PR 1 explorer), so it fires only on a catastrophic
regression — pickling sneaking back onto the hot path, the transition
memo silently disabled, a freeze-encoding blow-up — never on machine
noise.  Budget: well under 10 seconds wall clock including the floor.
The full tracking lives in ``benchmarks/test_verify_speed.py`` (which
writes ``BENCH_verify.json``).
"""

from __future__ import annotations

import time

import pytest

from repro.protocols.sense.protocol_a import ProtocolA
from repro.topology.complete import complete_with_sense_of_direction
from repro.verification import explore_protocol

#: states/sec floor — the PR 1 explorer already beat this comfortably.
MIN_STATES_PER_SEC = 3_000.0


@pytest.mark.perf_smoke
def test_explorer_sustains_minimum_throughput():
    topology = complete_with_sense_of_direction(4)
    start = time.perf_counter()
    report = explore_protocol(ProtocolA(), topology)
    dt = time.perf_counter() - start
    assert report.complete
    assert report.leaders_seen == {0, 1, 2, 3}
    assert dt < 10.0, f"A@4 took {dt:.1f}s; the explorer is pathologically slow"
    assert report.states_explored / dt >= MIN_STATES_PER_SEC, (
        f"explorer throughput collapsed: {report.states_explored / dt:.0f} "
        f"states/sec on A@4 (floor {MIN_STATES_PER_SEC:.0f})"
    )
