"""CI smoke slice: ``pytest -m verify_smoke``.

One bounded exploration plus a 50-schedule fuzz campaign per registered
protocol — enough to catch a broken checker or a blatant protocol
regression in well under a minute, cheap enough to run on every push.
The exhaustive and property suites remain the real verdict; this marker
exists so CI can gate quickly.
"""

from __future__ import annotations

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.protocol import registered_protocols
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import explore_protocol, fuzz_protocol
from tests.verification.conftest import deterministic_protocols

_POWER_OF_TWO_ONLY = {"B", "C"}


def _instance(name):
    cls = registered_protocols()[name]
    n = 4 if name in _POWER_OF_TWO_ONLY else 3
    if cls.needs_sense_of_direction:
        return cls(), complete_with_sense_of_direction(n)
    return cls(), complete_without_sense(n, seed=0)


@pytest.mark.verify_smoke
@pytest.mark.parametrize("name", deterministic_protocols(), ids=str)
def test_bounded_explore_smoke(name):
    protocol, topology = _instance(name)
    # bounded: a truncated search is fine here, a violation is not
    report = explore_protocol(protocol, topology, max_states=2_000)
    if report.complete:
        assert report.terminal_states > 0


@pytest.mark.verify_smoke
@pytest.mark.parametrize("name", deterministic_protocols(), ids=str)
def test_fuzz_smoke(name):
    protocol, topology = _instance(name)
    report = fuzz_protocol(protocol, topology, schedules=50, seed=0)
    assert report.ok, (
        f"{name}: {report.violations[0].kind} — "
        f"{report.violations[0].message}"
    )
    assert report.runs == 50
