"""Tests for deterministic schedule replay, trace files and shrinking.

The contract under test: a trace replays **byte-for-byte** (same
transitions, same violation, same step), survives a save/load round-trip,
and shrinking preserves the violation class while never growing the
schedule.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ConfigurationError
from repro.protocols.sense.protocol_a import ProtocolA
from repro.topology.complete import complete_with_sense_of_direction
from repro.verification import (
    ScheduleTrace,
    fuzz_protocol,
    load_trace,
    replay_trace,
    save_trace,
    shrink_trace,
)


@pytest.fixture
def violating_trace(buggy_protocol):
    report = fuzz_protocol(
        buggy_protocol, complete_with_sense_of_direction(6),
        schedules=200, seed=0,
    )
    assert not report.ok
    return report.violations[0]


class TestStrictReplay:
    def test_reproduces_the_exact_violation(
        self, buggy_protocol, violating_trace
    ):
        outcome = replay_trace(violating_trace.trace, buggy_protocol)
        assert outcome.violation_kind == violating_trace.kind
        assert outcome.violation == violating_trace.message
        # byte-for-byte: the tape was consumed exactly as recorded
        assert outcome.choices_used == violating_trace.trace.choices

    def test_replay_is_deterministic(self, buggy_protocol, violating_trace):
        a = replay_trace(violating_trace.trace, buggy_protocol)
        b = replay_trace(violating_trace.trace, buggy_protocol)
        assert (a.violation, a.steps, a.messages_sent) == (
            b.violation, b.steps, b.messages_sent
        )

    def test_out_of_range_choice_raises(self):
        trace = ScheduleTrace.capture(
            "A", complete_with_sense_of_direction(3), (0, 1, 2), (99,),
        )
        with pytest.raises(ConfigurationError, match="out of range"):
            replay_trace(trace, ProtocolA())

    def test_lenient_replay_wraps_indices(self):
        trace = ScheduleTrace.capture(
            "A", complete_with_sense_of_direction(3), (0, 1, 2), (99,),
        )
        outcome = replay_trace(trace, ProtocolA(), strict=False)
        assert outcome.ok
        assert outcome.quiescent
        assert outcome.leader_id is not None

    def test_clean_replay_reports_leader(self):
        topology = complete_with_sense_of_direction(4)
        report = fuzz_protocol(ProtocolA(), topology, schedules=1, seed=0)
        assert report.ok
        # rebuild the clean run manually: empty tape + lenient completion
        trace = ScheduleTrace.capture("A", topology, (0, 1, 2, 3), ())
        outcome = replay_trace(trace, ProtocolA(), strict=False)
        assert outcome.ok and outcome.quiescent
        assert outcome.leader_id in {0, 1, 2, 3}

    def test_record_log_narrates_steps(self, buggy_protocol, violating_trace):
        outcome = replay_trace(
            violating_trace.trace, buggy_protocol, record_log=True
        )
        text = "\n".join(outcome.log)
        assert "wakes spontaneously" in text
        assert "***" in text  # the violation is marked


class TestTraceFiles:
    def test_round_trip_is_identity(self, violating_trace, tmp_path):
        path = save_trace(violating_trace.trace, tmp_path / "t.json")
        assert load_trace(path) == violating_trace.trace

    def test_replay_from_file_reproduces_by_name(
        self, buggy_registered, buggy_protocol, violating_trace, tmp_path
    ):
        # no protocol argument: the trace names it, the registry builds it
        path = save_trace(violating_trace.trace, tmp_path / "t.json")
        outcome = replay_trace(load_trace(path))
        assert outcome.violation == violating_trace.message

    def test_wrong_format_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError, match="trace file"):
            load_trace(path)

    def test_unknown_fields_are_rejected(self, violating_trace, tmp_path):
        path = save_trace(violating_trace.trace, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        payload["surprise"] = 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="unknown trace fields"):
            load_trace(path)

    def test_topology_is_self_contained(self, violating_trace):
        # the trace snapshots the wiring: reconstructing it needs no seed
        topology = violating_trace.trace.topology()
        reference = complete_with_sense_of_direction(6)
        for position in range(6):
            for port in range(5):
                assert topology.neighbor(position, port) == (
                    reference.neighbor(position, port)
                )


class TestShrinking:
    def test_shrunk_trace_still_violates(self, buggy_protocol, violating_trace):
        shrunk = shrink_trace(violating_trace.trace, buggy_protocol)
        outcome = replay_trace(shrunk, buggy_protocol)
        assert outcome.violation_kind == "safety"
        assert "two leaders" in outcome.violation

    def test_shrunk_never_longer(self, buggy_protocol, violating_trace):
        shrunk = shrink_trace(violating_trace.trace, buggy_protocol)
        assert len(shrunk.choices) <= len(violating_trace.trace.choices)

    def test_shrunk_trace_is_strict(self, buggy_protocol, violating_trace):
        # canonicalisation: the shrunk tape replays without leniency
        shrunk = shrink_trace(violating_trace.trace, buggy_protocol)
        outcome = replay_trace(shrunk, buggy_protocol, strict=True)
        assert outcome.choices_used == shrunk.choices

    def test_shrunk_trace_round_trips(
        self, buggy_protocol, violating_trace, tmp_path
    ):
        shrunk = shrink_trace(violating_trace.trace, buggy_protocol)
        path = save_trace(shrunk, tmp_path / "shrunk.json")
        outcome = replay_trace(load_trace(path), buggy_protocol)
        assert outcome.violation == violating_trace.message

    def test_clean_trace_refuses_to_shrink(self):
        trace = ScheduleTrace.capture(
            "A", complete_with_sense_of_direction(3), (0, 1, 2), (),
        )
        with pytest.raises(ConfigurationError, match="replays cleanly"):
            shrink_trace(trace, ProtocolA())

    def test_liveness_violation_shrinks(self):
        from tests.verification.test_fuzz import _Silent
        from repro.topology.complete import complete_without_sense

        topology = complete_without_sense(3, seed=0)
        report = fuzz_protocol(_Silent(), topology, schedules=1, seed=0)
        trace = report.violations[0].trace
        shrunk = shrink_trace(trace, _Silent())
        outcome = replay_trace(shrunk, _Silent(), strict=False)
        assert outcome.violation_kind == "liveness"
        assert len(shrunk.choices) <= len(trace.choices)


class TestCliIntegration:
    """The full fuzz -> shrink -> save -> replay loop through the CLI."""

    def test_verify_fuzz_finds_shrinks_and_saves(
        self, buggy_registered, tmp_path, capsys
    ):
        from repro.__main__ import main as cli_main

        trace_path = tmp_path / "bug.json"
        code = cli_main([
            "verify", "--protocol", buggy_registered.name, "--n", "6",
            "--fuzz", "200", "--save-trace", str(trace_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "safety violation" in out
        assert "shrunk from" in out
        assert "two leaders" in out
        assert trace_path.exists()

        # and the saved (shrunk) trace replays from disk, by name
        code = cli_main(["verify", "--replay", str(trace_path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "SAFETY violation" in out
        assert "two leaders" in out

    def test_verify_replay_shrink_flag(
        self, buggy_registered, violating_trace, tmp_path, capsys
    ):
        from repro.__main__ import main as cli_main

        path = save_trace(violating_trace.trace, tmp_path / "raw.json")
        code = cli_main(["verify", "--replay", str(path), "--shrink"])
        assert code == 1
        out = capsys.readouterr().out
        assert "shrunk to" in out
        assert "SAFETY violation" in out
