"""Shared fixtures: a protocol with a planted safety bug.

``PrematureLeaderA`` is Protocol A with one deliberately wrong line: a
candidate declares itself leader as soon as it reaches level 2, without
running the election phase that arbitrates between surviving candidates.
At N=6 with k=2 the capture windows of candidates 0 and 3 are disjoint
({1,2} and {4,5}), so a schedule that wakes both and lets each capture its
own window produces two leaders — but only under schedules where neither
candidate's ``Capture`` reaches the other first.  That makes it a good
target for the fuzzer (random delay sampling rarely lines this up) and a
good shrinking subject (most of a violating schedule is irrelevant).
"""

from __future__ import annotations

import pytest

from repro.core.protocol import _REGISTRY, registered_protocols
from repro.protocols.capture_base import Role
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolANode


def deterministic_protocols() -> list[str]:
    """Registered protocols the lock-step world can drive.

    The exhaustive/fuzz checkers replay transitions with no run seed, so
    they cannot derive the per-node coin streams the ``uses_ctx_rng``
    protocols (RS, RT) draw from — those are excluded here and their
    probabilistic properties are checked by ``verify --stat``
    (``tests/verification/test_stat.py``) instead.
    """
    from repro.verification.stat import randomized_protocol_names

    randomized = set(randomized_protocol_names())
    return sorted(set(registered_protocols()) - randomized)


class PrematureLeaderNode(ProtocolANode):
    """Protocol A node that declares at level 2 instead of electing."""

    def _handle_capture_accept(self, message):
        super()._handle_capture_accept(message)
        if self.role is Role.CANDIDATE and self.level >= 2:
            self.ctx.declare_leader()  # the planted bug


class PrematureLeaderA(ProtocolA):
    """Protocol A (k=2) with the premature declaration planted."""

    name = "buggy-premature-leader"

    def __init__(self) -> None:
        super().__init__(k=2)

    def create_node(self, ctx):
        return PrematureLeaderNode(ctx, 2, spread_wakeup=False)


@pytest.fixture
def buggy_protocol():
    """A fresh planted-bug protocol instance (not registered)."""
    return PrematureLeaderA()


@pytest.fixture
def buggy_registered():
    """Register the planted-bug protocol for by-name reconstruction,
    removing it again on teardown so the global registry stays clean."""
    _REGISTRY[PrematureLeaderA.name] = PrematureLeaderA
    yield PrematureLeaderA
    _REGISTRY.pop(PrematureLeaderA.name, None)
