"""Unit tests for the flat fingerprint table.

The table is the explorer's only record of where it has been; a silent
bug here (a lost entry, a corrupted mask, a bad merge) would turn
"verified exhaustively" into a lie, so the edge cases get direct tests:
the zero-fingerprint alias, growth past the load factor, overflow masks
wider than 63 bits, and the merge rule parallel workers rely on.
"""

from __future__ import annotations

import random

from repro.verification.store import FingerprintTable


def test_put_get_roundtrip():
    table = FingerprintTable(capacity=8)
    table.put(42, 0b1011)
    table.put(-7, 0)
    assert table.get(42) == 0b1011
    assert table.get(-7) == 0
    assert table.get(99) is None
    assert 42 in table and -7 in table and 99 not in table
    assert len(table) == 2


def test_overwrite_does_not_grow_count():
    table = FingerprintTable(capacity=8)
    table.put(5, 1)
    table.put(5, 3)
    assert len(table) == 1
    assert table.get(5) == 3


def test_zero_fingerprint_is_a_valid_key():
    # 0 marks an empty slot internally; a real fingerprint of 0 must
    # still store and read back (it is remapped to a fixed alias).
    table = FingerprintTable(capacity=8)
    assert table.get(0) is None
    table.put(0, 7)
    assert table.get(0) == 7
    assert 0 in table
    assert len(table) == 1


def test_growth_preserves_every_entry():
    rng = random.Random(1)
    entries = {rng.getrandbits(63) - 2**62: i for i in range(5_000)}
    table = FingerprintTable(capacity=16)  # forces many growth steps
    for key, mask in entries.items():
        table.put(key, mask)
    assert len(table) == len(entries)
    for key, mask in entries.items():
        assert table.get(key) == mask
    # load factor stays under the probing cliff after growth
    assert len(table) <= 0.66 * table.capacity


def test_wide_masks_spill_to_overflow():
    table = FingerprintTable(capacity=8)
    wide = 1 << 70 | 1
    table.put(11, wide)
    assert table.get(11) == wide
    # narrowing the mask again must clear the overflow entry
    table.put(11, 3)
    assert table.get(11) == 3
    assert not table._overflow


def test_merge_keeps_weaker_mask():
    ours = FingerprintTable(capacity=8)
    theirs = FingerprintTable(capacity=8)
    ours.put(1, 0b110)
    theirs.put(1, 0b011)  # conflict: intersection 0b010 is the weaker claim
    theirs.put(2, 0b111)  # only theirs
    ours.put(3, 0b001)  # only ours
    ours.merge(theirs)
    assert ours.get(1) == 0b010
    assert ours.get(2) == 0b111
    assert ours.get(3) == 0b001
    assert len(ours) == 3


def test_packed_unpacked_roundtrip():
    table = FingerprintTable(capacity=8)
    table.put(0, 5)
    table.put(123, 1 << 70)
    table.put(-9, 2)
    clone = FingerprintTable.unpacked(table.packed())
    assert len(clone) == len(table)
    for key in (0, 123, -9):
        assert clone.get(key) == table.get(key)


def test_bytes_used_tracks_flat_footprint():
    table = FingerprintTable(capacity=1 << 10)
    assert table.bytes_used() == 16 * (1 << 10)
