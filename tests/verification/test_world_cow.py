"""Branch isolation: sibling branches can never observe each other.

The world shares node objects, queue tuples and transition memos between
branches (that sharing is what makes exhaustive search affordable), so
the property that keeps the whole checker honest is *isolation*: after
``branch()``, steps applied to one world are invisible to its parent and
to every sibling.  Property-tested here with seeded random walks over
every registered protocol — two siblings step divergently and each
other's frozen state must stay byte-identical — plus the fuzzer's
template pattern (many branches of one never-stepped template world).
"""

from __future__ import annotations

import random

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.errors import ProtocolViolation
from repro.core.protocol import registered_protocols
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification.world import LockStepWorld
from tests.verification.conftest import deterministic_protocols

_POWER_OF_TWO_ONLY = {"B", "C"}


def _instance(name):
    cls = registered_protocols()[name]
    n = 4 if name in _POWER_OF_TWO_ONLY else 3
    if cls.needs_sense_of_direction:
        return cls(), complete_with_sense_of_direction(n)
    return cls(), complete_without_sense(n, seed=0)


def _random_walk(world: LockStepWorld, rng: random.Random, steps: int) -> None:
    for _ in range(steps):
        actions = world.enabled_actions()
        if not actions:
            return
        try:
            world.apply(actions[rng.randrange(len(actions))])
        except ProtocolViolation:  # pragma: no cover - no planted bugs here
            return


@pytest.mark.parametrize("name", deterministic_protocols(), ids=str)
def test_divergent_siblings_stay_isolated(name):
    protocol, topology = _instance(name)
    rng = random.Random(f"cow:{name}")
    for round_ in range(5):
        parent = LockStepWorld(protocol, topology, tuple(range(topology.n)))
        _random_walk(parent, rng, rng.randrange(0, 8))
        parent_before = parent.state_tuple()
        left, right = parent.branch(), parent.branch()
        assert left.state_tuple() == parent_before == right.state_tuple()

        _random_walk(left, rng, rng.randrange(1, 10))
        # neither the parent nor the sibling saw the left walk
        assert parent.state_tuple() == parent_before
        assert right.state_tuple() == parent_before
        assert right.fingerprint() == parent.fingerprint()

        left_after = left.state_tuple()
        _random_walk(right, rng, rng.randrange(1, 10))
        # ...and the right walk is invisible to the stepped left branch
        assert left.state_tuple() == left_after
        assert parent.state_tuple() == parent_before


def test_template_branches_are_fresh_and_deterministic():
    # The fuzzer's pattern: one template world, one branch per episode.
    protocol, topology = _instance("A")
    template = LockStepWorld(protocol, topology, tuple(range(topology.n)))
    pristine = template.state_tuple()

    def walk(seed: int):
        world = template.branch()
        _random_walk(world, random.Random(seed), 40)
        return world.state_tuple()

    first = walk(7)
    second = walk(7)
    assert first == second  # same seed, same branch, same trajectory
    assert template.state_tuple() == pristine  # episodes never leak back
    assert walk(8) != first  # and the walk actually moves


def test_branch_shares_but_never_mutates_node_objects():
    # Nodes are replaced, never mutated: after a transition the parent's
    # object is still the pre-transition one (possibly shared), and the
    # child holds a different object for the stepped position.
    protocol, topology = _instance("A")
    parent = LockStepWorld(protocol, topology, tuple(range(topology.n)))
    child = parent.branch()
    before = parent.nodes[0]
    child.apply(("wake", 0))
    assert parent.nodes[0] is before
    assert child.nodes[0] is not before
    assert not before.awake
    assert child.nodes[0].awake
