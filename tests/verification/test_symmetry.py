"""The permutation-apply primitive, its groups, and the soundness boundary.

Two kinds of test live here.  The mechanical ones check that
``state_tuple`` + ``Permutation`` actually implement a relabelling: the
identity is a no-op, rotations of a sense-of-direction network map the
"node p woke first" configuration onto the "node p+1 woke first" one
(which exercises every ID_FIELDS/PORT_FIELDS registry entry that matters
for protocol A's state and messages), and the fully symmetric initial
configuration is a fixed point of the whole group.

The boundary ones pin what ``docs/verification.md`` claims: orbit
*pruning* is reachability-sound (every state visited is real) but **not**
outcome-complete for these id-comparing protocols — at A@5 it provably
loses a winner — which is exactly why the default explorer never quotients
and ``symmetry`` is an opt-in census/bug-hunting mode.
"""

from __future__ import annotations

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.protocols.sense.protocol_a import ProtocolA
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import (
    Permutation,
    canonical_fingerprint,
    canonical_state,
    explore_protocol,
    rotation_group,
    symmetric_group,
    symmetry_group,
)
from repro.verification.world import LockStepWorld


def _world_a(n: int) -> LockStepWorld:
    return LockStepWorld(
        ProtocolA(), complete_with_sense_of_direction(n), tuple(range(n))
    )


def test_identity_permutation_is_a_noop():
    world = _world_a(4)
    world.apply(("wake", 2))
    identity = Permutation(tuple(range(4)), (), None)
    assert identity.apply(world) == world.state_tuple()


def test_group_sizes():
    sense = complete_with_sense_of_direction(4)
    hidden = complete_without_sense(4, seed=0)
    assert len(rotation_group(sense)) == 4
    assert len(symmetric_group(hidden)) == 24
    assert len(symmetry_group(sense)) == 4
    assert len(symmetry_group(hidden)) == 24


def test_rotations_identify_rotated_wakeups():
    # "Node p woke first" and "node p+1 woke first" are the same state
    # modulo rotation: node states (cand, strengths, levels), queued
    # Capture messages and the pending-wake set must all relabel
    # consistently for the canonical forms to coincide.
    n = 5
    group = rotation_group(complete_with_sense_of_direction(n))
    canon = []
    for p in range(n):
        world = _world_a(n)
        world.apply(("wake", p))
        canon.append(canonical_state(world, group))
    assert len(set(map(repr, canon))) == 1
    # ...and the canonicalisation does not collapse genuinely different
    # states: the initial world is not in the woken world's orbit.
    initial = _world_a(n)
    assert canonical_fingerprint(initial, group) != hash(canon[0])


def test_initial_configuration_is_a_group_fixed_point():
    # All nodes identical, queues empty, every wake pending: each group
    # member (including all 24 hidden-wiring relabellings with their port
    # renumberings) must map the state to itself.
    world = _world_a(4)
    for perm in rotation_group(world.topology):
        assert perm.apply(world) == world.state_tuple()

    from repro.protocols.nosense.protocol_d import ProtocolD

    hidden = complete_without_sense(4, seed=0)
    world = LockStepWorld(ProtocolD(), hidden, tuple(range(4)))
    for perm in symmetric_group(hidden):
        assert perm.apply(world) == world.state_tuple()


def test_census_counts_at_most_the_visited_states():
    report = explore_protocol(
        ProtocolA(), complete_with_sense_of_direction(4), symmetry="census"
    )
    assert report.canonical_states is not None
    assert 0 < report.canonical_states <= report.states_explored


def test_prune_mode_is_reachability_sound_but_not_outcome_complete():
    # The documented boundary, pinned on a concrete instance: protocol A
    # resolves contests by comparing identities with ``<``, so a rotation
    # is *not* an automorphism of the checked system.  Orbit pruning
    # therefore loses outcomes (here: a whole winner) even though every
    # state it does visit is genuinely reachable.
    topology = complete_with_sense_of_direction(5)
    full = explore_protocol(ProtocolA(), topology)
    pruned = explore_protocol(ProtocolA(), topology, symmetry="prune-unsound")
    assert pruned.canonical_states == pruned.states_explored
    assert pruned.states_explored < full.states_explored
    assert pruned.leaders_seen <= full.leaders_seen  # reachability-sound
    assert pruned.leaders_seen != full.leaders_seen  # NOT outcome-complete


def test_prune_mode_is_gated_by_the_capability_table():
    # ``symmetry="prune"`` now means "prove it": the linter-derived
    # capability table says protocol A orders identities, so the gate
    # refuses and points at census / prune-unsound instead.
    from repro.core.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="not outcome-sound"):
        explore_protocol(
            ProtocolA(),
            complete_with_sense_of_direction(4),
            symmetry="prune",
        )


def test_symmetric_group_refused_past_n6():
    from repro.protocols.nosense.protocol_d import ProtocolD

    with pytest.raises(ValueError, match="infeasible"):
        explore_protocol(
            ProtocolD(), complete_without_sense(7, seed=0), symmetry="census"
        )


def test_unknown_symmetry_mode_rejected():
    with pytest.raises(ValueError, match="unknown symmetry mode"):
        explore_protocol(
            ProtocolA(),
            complete_with_sense_of_direction(3),
            symmetry="quotient",
        )
