"""Property-based fuzzing across the whole protocol zoo.

Pure-python property testing (seeded ``random``, no extra dependency):
for every registered protocol, several randomised instances — random
distinct IDs, a random non-empty subset of spontaneously-waking nodes,
and (for unlabeled networks) a random hidden port permutation — are each
driven through a batch of adversarial schedules.  The fuzzer checks
safety on every step and liveness + validity at quiescence, so a bare
``report.ok`` carries all three properties; on top of that the observed
winners must come from the waking subset.

Every random draw descends from one seed per protocol, so a failure
reproduces exactly and arrives with a replayable shrinkable trace.
"""

from __future__ import annotations

import random

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.protocol import registered_protocols
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import fuzz_protocol
from tests.verification.conftest import deterministic_protocols

#: B and C pair candidates in a tournament and need a power-of-two N.
_POWER_OF_TWO_ONLY = {"B", "C"}

_ROUNDS = 3
_SCHEDULES = 8


def _sizes(name) -> tuple[int, ...]:
    return (2, 4) if name in _POWER_OF_TWO_ONLY else (2, 3, 4, 5)


@pytest.mark.parametrize("name", deterministic_protocols(), ids=str)
def test_random_instances_satisfy_all_properties(name):
    cls = registered_protocols()[name]
    rng = random.Random(f"fuzz-properties:{name}")
    for _ in range(_ROUNDS):
        n = rng.choice(_sizes(name))
        ids = rng.sample(range(100), n)
        if cls.needs_sense_of_direction:
            topology = complete_with_sense_of_direction(n, ids=ids)
        else:
            # random hidden wiring: each instance permutes the ports
            topology = complete_without_sense(
                n, ids=ids, seed=rng.randrange(10_000)
            )
        base = tuple(sorted(rng.sample(range(n), rng.randrange(1, n + 1))))
        report = fuzz_protocol(
            cls(), topology,
            schedules=_SCHEDULES,
            seed=rng.randrange(10_000),
            base_positions=base,
        )
        instance = f"{name} n={n} ids={ids} base={base}"
        assert report.ok, (
            f"{instance}: {report.violations[0].kind} — "
            f"{report.violations[0].message}"
        )
        base_ids = {topology.id_at(position) for position in base}
        assert report.leaders_seen <= base_ids, instance
        assert report.runs == _SCHEDULES, instance
