"""Parallel stratified exploration: same answers, any worker count.

The contract mirrors the experiment harness: ``workers=K`` fans
top-level action-prefix strata across the fork pool, and every form of
pool degradation (no fork, one CPU, ``REPRO_PARALLEL=0``) silently runs
the same strata serially — so all of these tests hold on any machine,
pool or no pool, and the fork path is additionally exercised wherever
``fork`` exists.
"""

from __future__ import annotations

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.errors import ProtocolViolation
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_b import ProtocolB
from repro.topology.complete import complete_with_sense_of_direction
from repro.verification import explore_protocol


def _assert_same_search(serial, parallel):
    assert parallel.states_explored == serial.states_explored
    assert parallel.terminal_states == serial.terminal_states
    assert parallel.quiescent_outcomes == serial.quiescent_outcomes
    assert parallel.leaders_seen == serial.leaders_seen
    assert parallel.max_messages_sent == serial.max_messages_sent
    assert parallel.complete and serial.complete


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_matches_serial_protocol_b(workers):
    topology = complete_with_sense_of_direction(4)
    serial = explore_protocol(ProtocolB(), topology)
    parallel = explore_protocol(ProtocolB(), topology, workers=workers)
    assert parallel.workers == workers
    _assert_same_search(serial, parallel)


def test_parallel_matches_serial_protocol_a_n5():
    topology = complete_with_sense_of_direction(5)
    serial = explore_protocol(ProtocolA(), topology)
    parallel = explore_protocol(ProtocolA(), topology, workers=2)
    _assert_same_search(serial, parallel)


def test_workers_one_is_the_serial_search():
    topology = complete_with_sense_of_direction(4)
    report = explore_protocol(ProtocolB(), topology, workers=1)
    assert report.workers == 1
    _assert_same_search(explore_protocol(ProtocolB(), topology), report)


def test_degraded_pool_still_correct(monkeypatch):
    # REPRO_PARALLEL=0 forces run_sweep serial; the stratified search must
    # degrade to the same merged result, exactly like experiment sweeps.
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    topology = complete_with_sense_of_direction(4)
    serial = explore_protocol(ProtocolB(), topology)
    degraded = explore_protocol(ProtocolB(), topology, workers=3)
    _assert_same_search(serial, degraded)


def test_violation_found_in_a_worker_propagates(buggy_protocol):
    topology = complete_with_sense_of_direction(6)
    with pytest.raises(ProtocolViolation, match="two leaders"):
        explore_protocol(
            buggy_protocol, topology, max_states=100_000, workers=2
        )


def test_truncated_parallel_search_reports_incomplete():
    topology = complete_with_sense_of_direction(5)
    report = explore_protocol(ProtocolA(), topology, max_states=500, workers=2)
    assert not report.complete


def test_census_survives_the_parallel_merge():
    topology = complete_with_sense_of_direction(4)
    serial = explore_protocol(ProtocolB(), topology, symmetry="census")
    parallel = explore_protocol(
        ProtocolB(), topology, symmetry="census", workers=2
    )
    assert parallel.canonical_states == serial.canonical_states
    _assert_same_search(serial, parallel)
