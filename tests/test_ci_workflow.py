"""Syntax and contract validation for ``.github/workflows/ci.yml``.

``actionlint`` is not available in this container, so this is the
equivalent gate the acceptance criteria ask for: the workflow must parse,
every job must be well-formed (runner, steps, pinned actions), and the
commands CI runs must be the exact commands the repo documents — the
tier-1 invocation, the self-hosted linter, the smoke markers from
``pyproject.toml``, the curated matrix cross-check, and the merge-base
BENCH trend gate.  Skips cleanly when PyYAML is absent.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = Path(__file__).parent.parent / ".github" / "workflows" / "ci.yml"
NIGHTLY = Path(__file__).parent.parent / ".github" / "workflows" / "nightly.yml"


@pytest.fixture(scope="module")
def spec():
    return yaml.safe_load(WORKFLOW.read_text())


@pytest.fixture(scope="module")
def jobs(spec):
    return spec["jobs"]


@pytest.fixture(scope="module")
def nightly_spec():
    return yaml.safe_load(NIGHTLY.read_text())


@pytest.fixture(scope="module")
def nightly_jobs(nightly_spec):
    return nightly_spec["jobs"]


def _steps(job):
    for step in job["steps"]:
        assert "uses" in step or "run" in step, f"step does nothing: {step}"
        yield step


def _run_lines(job):
    for step in _steps(job):
        if "run" in step:
            assert isinstance(step["run"], str)
            yield from step["run"].splitlines()


class TestWorkflowShape:
    def test_parses_and_names_the_pipeline(self, spec):
        assert spec["name"] == "CI"

    def test_triggers_on_push_and_pull_request(self, spec):
        # YAML 1.1 reads an unquoted ``on:`` key as boolean True.
        triggers = spec.get("on", spec.get(True))
        assert "pull_request" in triggers
        assert triggers["push"]["branches"] == ["main"]

    def test_expected_jobs_exist(self, jobs):
        assert set(jobs) == {
            "tests", "tests-no-numpy", "lint", "smoke", "matrix",
            "bench-trends",
        }

    def test_every_job_has_a_runner_and_steps(self, jobs):
        for name, job in jobs.items():
            assert job["runs-on"] == "ubuntu-latest", name
            assert list(_steps(job)), name

    def test_every_action_is_version_pinned(self, jobs):
        for job in jobs.values():
            for step in _steps(job):
                if "uses" in step:
                    action, _, version = step["uses"].partition("@")
                    assert action and version.startswith("v"), step["uses"]

    def test_checkout_precedes_python_setup_everywhere(self, jobs):
        for name, job in jobs.items():
            uses = [s["uses"].split("@")[0] for s in _steps(job) if "uses" in s]
            assert uses.index("actions/checkout") < uses.index(
                "actions/setup-python"
            ), name

    def test_pip_caching_is_enabled_everywhere(self, jobs):
        for name, job in jobs.items():
            caches = [
                s["with"].get("cache")
                for s in _steps(job)
                if s.get("uses", "").startswith("actions/setup-python@")
            ]
            assert caches and all(c == "pip" for c in caches), name


class TestCommands:
    def test_tier1_matrix_covers_supported_pythons(self, jobs):
        matrix = jobs["tests"]["strategy"]["matrix"]
        assert matrix["python-version"] == ["3.11", "3.12", "3.13"]

    def test_tier1_runs_the_documented_command(self, jobs):
        steps = [s for s in _steps(jobs["tests"]) if "run" in s]
        tier1 = [s for s in steps if "python -m pytest -x -q" in s["run"]]
        assert len(tier1) == 1
        assert tier1[0]["env"]["PYTHONPATH"] == "src"

    def test_no_numpy_leg_runs_tier1_with_the_fallback_forced(self, jobs):
        """The numpy-free leg is the proof the vector engine's
        pure-Python fallback carries the whole suite."""
        steps = [s for s in _steps(jobs["tests-no-numpy"]) if "run" in s]
        tier1 = [s for s in steps if "python -m pytest -x -q" in s["run"]]
        assert len(tier1) == 1
        assert tier1[0]["env"]["PYTHONPATH"] == "src"
        assert tier1[0]["env"]["REPRO_NO_NUMPY"] == "1"

    def test_shard_smoke_leg_exercises_the_vector_engine_cli(self, jobs):
        vector = [
            s for s in _steps(jobs["smoke"])
            if "run" in s and "--engine vector" in s["run"]
        ]
        assert len(vector) == 1
        assert vector[0]["if"] == "matrix.marker == 'shard_smoke'"
        assert "python -m repro run" in vector[0]["run"]

    def test_lint_job_runs_the_self_hosted_linter(self, jobs):
        lines = list(_run_lines(jobs["lint"]))
        assert any(line.strip() == "python -m repro lint" for line in lines)

    def test_lint_job_runs_the_flow_pass_and_analyze(self, jobs):
        lines = [line.strip() for line in _run_lines(jobs["lint"])]
        assert "python -m repro lint --flow" in lines
        assert "python -m repro analyze" in lines

    def test_lint_job_gates_capability_drift(self, jobs):
        # A code change that alters any derived capability must fail CI
        # until capabilities.json is regenerated.
        lines = [line.strip() for line in _run_lines(jobs["lint"])]
        assert "python -m repro lint --capabilities --check" in lines

    def test_lint_job_uploads_sarif_to_code_scanning(self, jobs):
        job = jobs["lint"]
        assert job["permissions"]["security-events"] == "write"
        uploads = [
            s for s in _steps(job)
            if s.get("uses", "").startswith("github/codeql-action/upload-sarif@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "always()"
        assert uploads[0]["with"]["sarif_file"] == "lint_report.sarif"
        renders = [
            s for s in _steps(job)
            if "run" in s and "--format sarif" in s["run"]
        ]
        assert len(renders) == 1
        assert "lint_report.sarif" in renders[0]["run"]

    def test_ruff_and_mypy_are_availability_gated_and_advisory(self, jobs):
        gated = [
            s for s in _steps(jobs["lint"])
            if "run" in s and "command -v ruff" in s["run"]
        ]
        assert len(gated) == 1
        assert gated[0]["continue-on-error"] is True
        assert "command -v mypy" in gated[0]["run"]

    def test_lint_failure_uploads_the_golden_report(self, jobs):
        uploads = [
            s for s in _steps(jobs["lint"])
            if s.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "failure()"
        assert "tests/fixtures/lint/golden_report.json" in uploads[0]["with"]["path"]

    def test_smoke_matrix_matches_the_registered_markers(self, jobs):
        import tomllib

        pyproject = tomllib.loads(
            (Path(__file__).parent.parent / "pyproject.toml").read_text()
        )
        registered = {
            m.split(":")[0] for m in pyproject["tool"]["pytest"]["ini_options"]["markers"]
        }
        matrix = set(jobs["smoke"]["strategy"]["matrix"]["marker"])
        assert matrix == registered
        lines = list(_run_lines(jobs["smoke"]))
        assert any("-m ${{ matrix.marker }}" in line for line in lines)

    def test_stat_smoke_leg_diffs_deterministic_reruns(self, jobs):
        """The stat_smoke leg's reproducibility contract: the reduced
        Monte-Carlo campaign runs twice with the same deterministic
        trial seeds and the two reports must be byte-identical."""
        stat = [
            s for s in _steps(jobs["smoke"])
            if "run" in s and "verify --stat" in s["run"]
        ]
        assert len(stat) == 1
        assert stat[0]["if"] == "matrix.marker == 'stat_smoke'"
        lines = [line.strip() for line in stat[0]["run"].splitlines()]
        reruns = [line for line in lines if "verify --stat" in line]
        assert len(reruns) == 2
        # Same flags both times — fixed trial seeds, so identical input.
        assert reruns[0].split("|")[0].strip() == reruns[1].split(">")[0].strip()
        assert any(line.startswith("diff ") for line in lines)

    def test_stat_smoke_failure_uploads_the_aggregate_report(self, jobs):
        uploads = [
            s for s in _steps(jobs["smoke"])
            if s.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "failure() && matrix.marker == 'stat_smoke'"
        assert "stat_report.md" in uploads[0]["with"]["path"]

    def test_shard_smoke_leg_is_pinned_in_the_smoke_matrix(self, jobs):
        """The sharded-kernel digest check must stay a named CI leg.

        The marker-equality test above would also catch its removal, but
        only indirectly (by failing on pyproject).  This pin makes the
        intent explicit: dropping ``shard_smoke`` from the smoke matrix
        is dropping the serial-equivalence gate, not a cleanup.
        """
        assert "shard_smoke" in jobs["smoke"]["strategy"]["matrix"]["marker"]

    def test_matrix_job_runs_the_quick_curated_cross_check(self, jobs):
        lines = [line.strip() for line in _run_lines(jobs["matrix"])]
        assert (
            "python -m repro check --all --quick --outdir matrix_out"
            in lines
        )

    def test_matrix_failure_uploads_the_aggregate_report(self, jobs):
        uploads = [
            s for s in _steps(jobs["matrix"])
            if s.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "failure()"
        assert uploads[0]["with"]["path"] == "matrix_out"

    def test_bench_gate_compares_merge_base_snapshots(self, jobs):
        job = jobs["bench-trends"]
        checkouts = [
            s for s in _steps(job)
            if s.get("uses", "").startswith("actions/checkout@")
        ]
        # The merge-base extraction needs history, not a shallow clone.
        assert checkouts[0]["with"]["fetch-depth"] == 0
        lines = [line.strip() for line in _run_lines(job)]
        assert any("git merge-base" in line for line in lines)
        for name in (
            "BENCH_kernel.json", "BENCH_verify.json", "BENCH_faults.json",
            "BENCH_random.json",
        ):
            assert any(name in line for line in lines), name
        assert (
            "python -m repro trends --baseline ci_baseline --current ."
            in lines
        )


class TestNightly:
    """The scheduled deep-verification workflow (nightly.yml)."""

    def test_runs_on_a_schedule_and_by_hand(self, nightly_spec):
        triggers = nightly_spec.get("on", nightly_spec.get(True))
        assert "workflow_dispatch" in triggers
        crons = [entry["cron"] for entry in triggers["schedule"]]
        assert len(crons) == 1
        # Five-field cron, nightly cadence (every day-of-month/month/week).
        minute, hour, dom, month, dow = crons[0].split()
        assert (dom, month, dow) == ("*", "*", "*")
        assert minute.isdigit() and hour.isdigit()

    def test_expected_jobs_exist(self, nightly_jobs):
        assert set(nightly_jobs) == {"stat-deep", "check-deep"}

    def test_every_nightly_action_is_version_pinned(self, nightly_jobs):
        for job in nightly_jobs.values():
            for step in _steps(job):
                if "uses" in step:
                    action, _, version = step["uses"].partition("@")
                    assert action and version.startswith("v"), step["uses"]

    def test_stat_deep_runs_the_acceptance_scale_campaign(self, nightly_jobs):
        # 600 trials certify the 0.99/0.99 pair (zero failures needed
        # from 459 up); the default strata are N in {64, 256}.
        lines = [line.strip() for line in _run_lines(nightly_jobs["stat-deep"])]
        deep = [line for line in lines if "verify --stat" in line]
        assert len(deep) == 2, "the campaign must run twice and be diffed"
        for line in deep:
            assert "--confidence 0.99" in line
            assert "--trials 600" in line
        assert any(line.startswith("diff ") for line in lines)

    def test_stat_deep_always_uploads_the_report(self, nightly_jobs):
        uploads = [
            s for s in _steps(nightly_jobs["stat-deep"])
            if s.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "always()"
        assert "stat_deep.md" in uploads[0]["with"]["path"]

    def test_check_deep_runs_the_full_nonquick_campaign(self, nightly_jobs):
        lines = [line.strip() for line in _run_lines(nightly_jobs["check-deep"])]
        full = [line for line in lines if "repro check --all" in line]
        assert len(full) == 1
        assert "--quick" not in full[0]
        uploads = [
            s for s in _steps(nightly_jobs["check-deep"])
            if s.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert len(uploads) == 1
        assert uploads[0]["if"] == "always()"
