"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


@pytest.fixture
def unit_delays():
    """The paper's worst-case schedule: every message takes one unit."""
    return ConstantDelay(1.0)


@pytest.fixture
def jittery_delays():
    """A representative asynchronous schedule."""
    return UniformDelay(0.05, 1.0)


def elect_sense(protocol, n, **kwargs):
    """Run one election on a labeled complete network."""
    return run_election(protocol, complete_with_sense_of_direction(n), **kwargs)


def elect_nosense(protocol, n, *, topo_seed=0, **kwargs):
    """Run one election on an unlabeled complete network."""
    return run_election(
        protocol, complete_without_sense(n, seed=topo_seed), **kwargs
    )
