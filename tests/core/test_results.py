"""Tests for ElectionResult verification (liveness/safety/validity)."""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolViolation
from repro.core.results import ElectionResult
from repro.sim.tracing import Tracer


def make_result(snapshots, **overrides):
    defaults = dict(
        n=len(snapshots),
        protocol="X",
        leader_id=None,
        leader_position=None,
        elected_at=None,
        election_time=float("inf"),
        election_depth=None,
        messages_total=0,
        bits_total=0,
        messages_by_type={},
        max_depth=0,
        quiescent_at=0.0,
        first_wake_time=0.0,
        last_wake_time=0.0,
        base_positions=(0,),
        failed_positions=(),
        node_snapshots=tuple(snapshots),
        trace=Tracer(),
    )
    defaults.update(overrides)
    return ElectionResult(**defaults)


def snap(node_id, *, leader=False, base=False):
    return {"id": node_id, "awake": True, "is_base": base, "is_leader": leader}


class TestVerify:
    def test_single_base_leader_passes(self):
        result = make_result([snap(0, leader=True, base=True), snap(1)])
        result.verify()

    def test_no_leader_is_a_liveness_violation(self):
        result = make_result([snap(0, base=True), snap(1)])
        with pytest.raises(ProtocolViolation, match="no leader"):
            result.verify()

    def test_two_leaders_is_a_safety_violation(self):
        result = make_result(
            [snap(0, leader=True, base=True), snap(1, leader=True, base=True)]
        )
        with pytest.raises(ProtocolViolation, match="multiple leaders"):
            result.verify()

    def test_passive_leader_is_a_validity_violation(self):
        result = make_result([snap(0, leader=True, base=False), snap(1, base=True)])
        with pytest.raises(ProtocolViolation, match="not a base node"):
            result.verify()


class TestDerived:
    def test_messages_per_node(self):
        result = make_result([snap(0, leader=True, base=True), snap(1)],
                             messages_total=10)
        assert result.messages_per_node == 5.0

    def test_num_base_nodes(self):
        result = make_result([snap(0, leader=True, base=True), snap(1)],
                             base_positions=(0, 1, 2))
        assert result.num_base_nodes == 3

    def test_summary_mentions_the_essentials(self):
        result = make_result(
            [snap(0, leader=True, base=True)],
            leader_id=0, messages_total=7, election_time=3.0,
        )
        text = result.summary()
        assert "leader=0" in text and "msgs=7" in text
