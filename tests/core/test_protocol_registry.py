"""Tests for the protocol registry and validation plumbing."""

from __future__ import annotations

import pytest

import repro  # noqa: F401  - importing registers every protocol
from repro.core.errors import ConfigurationError
from repro.core.protocol import protocol_class, registered_protocols
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

EXPECTED_NAMES = {
    "A", "A'", "B", "C", "D", "E", "F", "G",
    "AG85", "LMW86", "CR", "FT",
}


class TestRegistry:
    def test_every_paper_protocol_is_registered(self):
        assert EXPECTED_NAMES <= set(registered_protocols())

    def test_lookup_by_name(self):
        assert protocol_class("A") is ProtocolA

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(ConfigurationError, match="registered"):
            protocol_class("nope")


class TestValidation:
    def test_sense_protocols_reject_unlabeled_networks(self):
        with pytest.raises(ConfigurationError, match="sense of direction"):
            ProtocolA().validate(complete_without_sense(8))

    def test_protocol_a_rejects_out_of_range_k(self):
        topo = complete_with_sense_of_direction(8)
        with pytest.raises(ConfigurationError):
            ProtocolA(k=0).validate(topo)
        with pytest.raises(ConfigurationError):
            ProtocolA(k=8).validate(topo)

    def test_protocol_c_requires_power_of_two(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            ProtocolC().validate(complete_with_sense_of_direction(6))

    def test_protocol_c_requires_dividing_k(self):
        with pytest.raises(ConfigurationError):
            ProtocolC(k=3).validate(complete_with_sense_of_direction(16))

    def test_valid_configs_pass(self):
        ProtocolA(k=3).validate(complete_with_sense_of_direction(9))
        ProtocolC(k=4).validate(complete_with_sense_of_direction(16))
