"""Unit tests for the node framework (wake semantics, snapshots)."""

from __future__ import annotations

from typing import Any

from repro.core.messages import Message, Wakeup
from repro.core.node import Node, NodeContext


class StubContext(NodeContext):
    def __init__(self):
        self.node_id = 7
        self.n = 4
        self.num_ports = 3
        self.has_sense_of_direction = False
        self.sent = []
        self.leader_declared = False
        self.traces = []

    def send(self, port, message):
        self.sent.append((port, message))

    def port_label(self, port):
        return None

    def port_with_label(self, distance):
        raise AssertionError

    def now(self):
        return 1.5

    def declare_leader(self):
        self.leader_declared = True

    def trace(self, kind, **detail):
        self.traces.append((kind, detail))


class CountingNode(Node):
    def __init__(self, ctx):
        super().__init__(ctx)
        self.wakes: list[bool] = []
        self.received: list[tuple[int, Message]] = []

    def on_wake(self, spontaneous):
        self.wakes.append(spontaneous)

    def on_message(self, port, message):
        self.received.append((port, message))

    def snapshot(self) -> dict[str, Any]:
        return super().snapshot()


class TestWakeSemantics:
    def test_wake_dispatches_exactly_once(self):
        node = CountingNode(StubContext())
        node.wake(True)
        node.wake(True)
        node.wake(False)
        assert node.wakes == [True]
        assert node.is_base

    def test_message_wakes_passive_node_as_non_base(self):
        node = CountingNode(StubContext())
        node.receive(1, Wakeup())
        assert node.wakes == [False]
        assert not node.is_base
        assert node.received == [(1, Wakeup())]

    def test_spontaneous_after_message_does_not_rewake(self):
        node = CountingNode(StubContext())
        node.receive(0, Wakeup())
        node.wake(True)
        assert node.wakes == [False]
        assert not node.is_base


class TestLeadership:
    def test_become_leader_declares_and_traces(self):
        ctx = StubContext()
        node = CountingNode(ctx)
        node.become_leader()
        assert node.is_leader
        assert ctx.leader_declared
        assert ("leader", {}) in ctx.traces

    def test_snapshot_reports_the_basics(self):
        node = CountingNode(StubContext())
        node.wake(True)
        snap = node.snapshot()
        assert snap == {
            "id": 7, "awake": True, "is_base": True, "is_leader": False,
        }
