"""Unit tests for the message model and its O(log N) size accounting."""

from __future__ import annotations

import math
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import MessageSizeError
from repro.core.messages import (
    LeaderAnnouncement,
    MAX_INT_FIELDS,
    Message,
    TYPE_TAG_BITS,
    Wakeup,
    message_bits,
)


@dataclass(frozen=True, slots=True)
class TwoInts(Message):
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class WithBool(Message):
    flag: bool


@dataclass(frozen=True, slots=True)
class WithTuple(Message):
    pair: tuple


@dataclass(frozen=True, slots=True)
class TooWide(Message):
    a: int
    b: int
    c: int
    d: int
    e: int
    f: int
    g: int


@dataclass(frozen=True, slots=True)
class BadField(Message):
    name: str


class TestMessageBits:
    def test_empty_message_costs_only_the_tag(self):
        assert message_bits(Wakeup(), 16) == TYPE_TAG_BITS

    def test_int_fields_cost_one_log_n_word_each(self):
        expected = TYPE_TAG_BITS + 2 * (math.ceil(math.log2(16)) + 1)
        assert message_bits(TwoInts(3, 7), 16) == expected

    def test_bits_grow_logarithmically_with_n(self):
        small = message_bits(TwoInts(1, 2), 16)
        large = message_bits(TwoInts(1, 2), 16**4)
        assert large == small + 2 * (4 - 1) * 4  # 4x the exponent, same fields

    def test_bool_fields_cost_one_bit(self):
        assert message_bits(WithBool(True), 64) == TYPE_TAG_BITS + 1

    def test_tuple_fields_charge_per_element(self):
        bits = message_bits(WithTuple((1, 2, 3)), 64)
        word = math.ceil(math.log2(64)) + 1
        assert bits == TYPE_TAG_BITS + 3 * word

    def test_too_many_int_fields_rejected(self):
        with pytest.raises(MessageSizeError):
            message_bits(TooWide(1, 2, 3, 4, 5, 6, 7), 64)
        assert MAX_INT_FIELDS < 7

    def test_unencodable_field_rejected(self):
        with pytest.raises(MessageSizeError):
            message_bits(BadField("oops"), 64)

    @given(st.integers(min_value=2, max_value=10**6),
           st.integers(min_value=0, max_value=10**9))
    def test_bits_always_within_constant_times_log_n(self, n, value):
        bits = message_bits(LeaderAnnouncement(value), n)
        assert bits <= TYPE_TAG_BITS + 4 * (math.log2(n) + 2)


class TestMessageValues:
    def test_messages_compare_structurally(self):
        assert TwoInts(1, 2) == TwoInts(1, 2)
        assert TwoInts(1, 2) != TwoInts(2, 1)

    def test_messages_are_immutable(self):
        message = TwoInts(1, 2)
        with pytest.raises(AttributeError):
            message.a = 5  # type: ignore[misc]

    def test_type_name_matches_class(self):
        assert Wakeup().type_name == "Wakeup"
        assert LeaderAnnouncement(3).type_name == "LeaderAnnouncement"
