"""Tests for the reliable-delivery overlay (`repro.core.reliable`).

The headline property (the issue's acceptance bar): under *any* seeded
fault plan with drop-rate < 1.0, the payload sequence each inner node
observes per link equals the fault-free FIFO sequence — no loss, no
duplicates, order preserved.  Plus: configuration validation, metadata
delegation, duplicate/ack bookkeeping, port abandonment at the liveness
boundary, and the fourteen-protocol N=64 election over lossy links.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol, registered_protocols
from repro.core.reliable import ReliableDelivery
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.faults import FaultPlan
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


@dataclass(frozen=True, slots=True)
class Token(Message):
    """Numbered test payload."""

    value: int


class _StreamNode(Node):
    """Sends ``count`` numbered tokens down every port; records arrivals."""

    def __init__(self, ctx: NodeContext, count: int) -> None:
        super().__init__(ctx)
        self.received: list[tuple[int, int]] = []
        self._count = count

    def on_wake(self, spontaneous: bool) -> None:
        if spontaneous:
            for value in range(1, self._count + 1):
                for port in range(self.ctx.num_ports):
                    self.ctx.send(port, Token(value))

    def on_message(self, port: int, message: Message) -> None:
        assert isinstance(message, Token)
        self.received.append((port, message.value))


class StreamProtocol(ElectionProtocol):
    """Not an election: a deterministic per-link payload stream."""

    name = "STREAM"

    def __init__(self, count: int) -> None:
        self.count = count
        self.nodes: list[_StreamNode] = []

    def create_node(self, ctx: NodeContext) -> _StreamNode:
        node = _StreamNode(ctx, self.count)
        self.nodes.append(node)
        return node


class TestConfiguration:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError, match="rto must be positive"):
            ReliableDelivery(ProtocolE(), rto=0.0)
        with pytest.raises(ConfigurationError, match="below rto"):
            ReliableDelivery(ProtocolE(), rto=2.0, rto_cap=1.0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            ReliableDelivery(ProtocolE(), max_retries=0)

    def test_metadata_delegates_to_the_inner_protocol(self):
        wrapped = ReliableDelivery(ProtocolC())
        assert wrapped.needs_sense_of_direction
        assert wrapped.describe() == "REL[C]"
        assert not ReliableDelivery(ProtocolE()).needs_sense_of_direction

    def test_validate_delegates(self):
        with pytest.raises(ConfigurationError):
            ReliableDelivery(ProtocolC()).validate(
                complete_without_sense(8, seed=1)
            )


class TestFifoRestoration:
    @settings(max_examples=25, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.6),
        duplicate=st.floats(min_value=0.0, max_value=1.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_any_plan_below_total_loss_yields_the_fault_free_sequence(
        self, drop, duplicate, jitter, seed
    ):
        count = 5
        stream = StreamProtocol(count)
        run_election(
            ReliableDelivery(stream, max_retries=200),
            complete_without_sense(3, seed=seed),
            faults=FaultPlan(
                seed=seed, drop=drop, duplicate=duplicate, jitter=jitter
            ),
            seed=seed,
            require_leader=False,
        )
        expected = list(range(1, count + 1))
        assert len(stream.nodes) == 3
        for node in stream.nodes:
            for port in range(2):
                arrived = [v for p, v in node.received if p == port]
                assert arrived == expected

    def test_lossy_election_bookkeeping_is_consistent(self):
        result = run_election(
            ReliableDelivery(ProtocolE()),
            complete_without_sense(16, seed=3),
            faults=FaultPlan(seed=3, drop=0.2, duplicate=0.1),
            seed=3,
        )
        result.verify()
        assert result.messages_dropped > 0
        assert result.retransmissions > 0
        assert result.duplicates_suppressed > 0
        assert result.packets_abandoned == 0

    def test_abandonment_bounds_pursuit_of_a_crashed_peer(self):
        # Crash one node immediately: its peers' retransmissions must stop
        # (ports abandoned) instead of livelocking, and the election still
        # reaches quiescence.
        result = run_election(
            ReliableDelivery(ProtocolE(), rto=0.5, rto_cap=1.0, max_retries=3),
            complete_without_sense(8, seed=5),
            faults=FaultPlan(seed=5, crashes={2: 0.5}),
            seed=5,
            require_leader=False,
        )
        assert result.crashed_positions == (2,)
        assert result.packets_abandoned > 0
        abandoned = [
            s["abandoned_ports"] for s in result.node_snapshots
            if s.get("abandoned_ports")
        ]
        assert abandoned


class TestAllProtocolsSurviveLoss:
    @pytest.mark.parametrize("name", sorted(registered_protocols()))
    def test_unique_leader_at_n64_under_ten_percent_drop(self, name):
        cls = registered_protocols()[name]
        protocol = ReliableDelivery(cls())
        topology = (
            complete_with_sense_of_direction(64)
            if cls.needs_sense_of_direction
            else complete_without_sense(64, seed=1)
        )
        result = run_election(
            protocol,
            topology,
            faults=FaultPlan(seed=11, drop=0.10, duplicate=0.05),
            seed=1,
        )
        result.verify()
        assert result.messages_dropped > 0
        assert result.protocol == f"REL[{cls().describe()}]"
