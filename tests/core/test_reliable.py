"""Tests for the reliable-delivery overlay (`repro.core.reliable`).

The headline property (the issue's acceptance bar): under *any* seeded
fault plan with drop-rate < 1.0, the payload sequence each inner node
observes per link equals the fault-free FIFO sequence — no loss, no
duplicates, order preserved.  Plus: configuration validation, metadata
delegation, duplicate/ack bookkeeping, port abandonment at the liveness
boundary, and the fourteen-protocol N=64 election over lossy links.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol, registered_protocols
from repro.core.reliable import Ack, Packet, ReliableDelivery, ReliableNode
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.faults import FaultPlan, Partition
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


@dataclass(frozen=True, slots=True)
class Token(Message):
    """Numbered test payload."""

    value: int


class _StreamNode(Node):
    """Sends ``count`` numbered tokens down every port; records arrivals."""

    def __init__(self, ctx: NodeContext, count: int) -> None:
        super().__init__(ctx)
        self.received: list[tuple[int, int]] = []
        self._count = count

    def on_wake(self, spontaneous: bool) -> None:
        if spontaneous:
            for value in range(1, self._count + 1):
                for port in range(self.ctx.num_ports):
                    self.ctx.send(port, Token(value))

    def on_message(self, port: int, message: Message) -> None:
        assert isinstance(message, Token)
        self.received.append((port, message.value))


class StreamProtocol(ElectionProtocol):
    """Not an election: a deterministic per-link payload stream."""

    name = "STREAM"

    def __init__(self, count: int) -> None:
        self.count = count
        self.nodes: list[_StreamNode] = []

    def create_node(self, ctx: NodeContext) -> _StreamNode:
        node = _StreamNode(ctx, self.count)
        self.nodes.append(node)
        return node


class TestConfiguration:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ConfigurationError, match="rto must be positive"):
            ReliableDelivery(ProtocolE(), rto=0.0)
        with pytest.raises(ConfigurationError, match="below rto"):
            ReliableDelivery(ProtocolE(), rto=2.0, rto_cap=1.0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            ReliableDelivery(ProtocolE(), max_retries=0)

    def test_metadata_delegates_to_the_inner_protocol(self):
        wrapped = ReliableDelivery(ProtocolC())
        assert wrapped.needs_sense_of_direction
        assert wrapped.describe() == "REL[C]"
        assert not ReliableDelivery(ProtocolE()).needs_sense_of_direction

    def test_validate_delegates(self):
        with pytest.raises(ConfigurationError):
            ReliableDelivery(ProtocolC()).validate(
                complete_without_sense(8, seed=1)
            )


class TestFifoRestoration:
    @settings(max_examples=25, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.6),
        duplicate=st.floats(min_value=0.0, max_value=1.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_any_plan_below_total_loss_yields_the_fault_free_sequence(
        self, drop, duplicate, jitter, seed
    ):
        count = 5
        stream = StreamProtocol(count)
        run_election(
            ReliableDelivery(stream, max_retries=200),
            complete_without_sense(3, seed=seed),
            faults=FaultPlan(
                seed=seed, drop=drop, duplicate=duplicate, jitter=jitter
            ),
            seed=seed,
            require_leader=False,
        )
        expected = list(range(1, count + 1))
        assert len(stream.nodes) == 3
        for node in stream.nodes:
            for port in range(2):
                arrived = [v for p, v in node.received if p == port]
                assert arrived == expected

    def test_lossy_election_bookkeeping_is_consistent(self):
        result = run_election(
            ReliableDelivery(ProtocolE()),
            complete_without_sense(16, seed=3),
            faults=FaultPlan(seed=3, drop=0.2, duplicate=0.1),
            seed=3,
        )
        result.verify()
        assert result.messages_dropped > 0
        assert result.retransmissions > 0
        assert result.duplicates_suppressed > 0
        assert result.packets_abandoned == 0

    def test_abandonment_bounds_pursuit_of_a_crashed_peer(self):
        # Crash one node immediately: its peers' retransmissions must stop
        # (ports abandoned) instead of livelocking, and the election still
        # reaches quiescence.
        result = run_election(
            ReliableDelivery(ProtocolE(), rto=0.5, rto_cap=1.0, max_retries=3),
            complete_without_sense(8, seed=5),
            faults=FaultPlan(seed=5, crashes={2: 0.5}),
            seed=5,
            require_leader=False,
        )
        assert result.crashed_positions == (2,)
        assert result.packets_abandoned > 0
        abandoned = [
            s["abandoned_ports"] for s in result.node_snapshots
            if s.get("abandoned_ports")
        ]
        assert abandoned


class _ArqProbe(NodeContext):
    """White-box context: records sends, hands out timers to fire by hand."""

    def __init__(self, num_ports: int = 2) -> None:
        self.node_id = 0
        self.n = num_ports + 1
        self.num_ports = num_ports
        self.has_sense_of_direction = False
        self.sent: list[tuple[int, Message]] = []
        self.counters: dict[str, int] = {}
        self.timers: list = []

    def send(self, port: int, message: Message) -> None:  # noqa: D102
        self.sent.append((port, message))

    def set_timer(self, delay, callback) -> None:  # noqa: D102
        self.timers.append(callback)

    def fire_timer(self) -> None:
        """Fire the oldest armed timer (the overlay arms one at a time)."""
        self.timers.pop(0)()

    def count(self, metric: str, delta: int = 1) -> None:  # noqa: D102
        self.counters[metric] = self.counters.get(metric, 0) + delta

    def port_label(self, port: int):  # noqa: D102
        return None

    def port_with_label(self, distance: int) -> int:  # noqa: D102
        raise AssertionError("no sense of direction in this probe")

    def now(self) -> float:  # noqa: D102
        return 0.0

    def declare_leader(self) -> None:  # noqa: D102
        pass

    def trace(self, kind: str, **detail) -> None:  # noqa: D102
        pass


def _arq_node(max_retries: int = 3, num_ports: int = 2):
    """A ReliableNode over a 1-token stream, plus its probe context."""
    ctx = _ArqProbe(num_ports)
    node = ReliableNode(ctx, StreamProtocol(1), ReliableDelivery(
        ProtocolE(), max_retries=max_retries
    ))
    return node, ctx


class TestAbandonmentEdgeCases:
    """The liveness boundary, exercised packet by packet."""

    def test_retry_cap_abandons_the_port_and_stops_pursuit(self):
        node, ctx = _arq_node(max_retries=3)
        node.send_reliable(0, Token(1))
        # Original transmission went out and a timer is armed.
        assert [p for p, _ in ctx.sent] == [0]
        for _ in range(3):
            ctx.fire_timer()
        assert ctx.counters.get("retransmissions") == 3
        assert ctx.counters.get("packets_abandoned") is None
        # The cap-breaking firing abandons instead of retransmitting:
        # all still-buffered packets are counted, the buffer is cleared,
        # and no further timer is armed for the port.
        ctx.fire_timer()
        assert ctx.counters["packets_abandoned"] == 1
        assert ctx.counters["retransmissions"] == 3
        assert node._unacked[0] == {}
        assert 0 in node._dead_ports
        assert not ctx.timers

    def test_abandonment_counts_every_buffered_packet(self):
        node, ctx = _arq_node(max_retries=1)
        for value in (1, 2, 3):
            node.send_reliable(0, Token(value))
        ctx.fire_timer()  # one retransmission of the oldest
        ctx.fire_timer()  # cap broken: all three pending packets abandoned
        assert ctx.counters["packets_abandoned"] == 3

    def test_healthy_ports_keep_retransmitting_past_a_dead_one(self):
        node, ctx = _arq_node(max_retries=1)
        node.send_reliable(0, Token(1))
        node.send_reliable(1, Token(1))
        ctx.fire_timer()  # retry both
        ctx.fire_timer()  # both hit the cap together here
        assert node._dead_ports == {0, 1}
        # A port acked in time never dies: redo with one responsive peer.
        node, ctx = _arq_node(max_retries=1)
        node.send_reliable(0, Token(1))
        node.send_reliable(1, Token(1))
        node.receive(1, Ack(1))  # port 1's peer answers
        ctx.fire_timer()
        ctx.fire_timer()
        assert node._dead_ports == {0}
        assert node._unacked[1] == {}


class TestResequencingBuffer:
    """Out-of-order arrivals wait in the reorder buffer until the gap fills
    — the unit view of a partition closing mid-flight."""

    def test_buffered_packets_drain_in_order_when_the_gap_fills(self):
        node, ctx = _arq_node()
        stream = node.inner
        # Seqs 2 and 3 race ahead of seq 1 (cut, then healed+retransmitted).
        node.receive(0, Packet(2, Token(2)))
        node.receive(0, Packet(3, Token(3)))
        assert stream.received == []
        assert set(node._reorder[0]) == {2, 3}
        # Acks still flow while the gap is open, at the old high-water mark.
        assert [m.ack for _, m in ctx.sent if isinstance(m, Ack)] == [0, 0]
        node.receive(0, Packet(1, Token(1)))
        assert stream.received == [(0, 1), (0, 2), (0, 3)]
        assert node._reorder[0] == {}
        assert [m.ack for _, m in ctx.sent if isinstance(m, Ack)][-1] == 3

    def test_duplicate_of_a_buffered_packet_is_suppressed(self):
        node, ctx = _arq_node()
        node.receive(0, Packet(2, Token(2)))
        node.receive(0, Packet(2, Token(2)))  # retransmission overshoot
        assert ctx.counters["duplicates_suppressed"] == 1
        assert node._reorder[0] == {2: Token(2)}

    def test_partition_closing_mid_flight_restores_fifo(self):
        # Simulator view: a one-way cut 1->0 while node 1's stream is in
        # flight.  Everything sent into the cut is dropped; after it heals
        # the retransmissions interleave with younger packets, so the
        # reorder buffer must resequence.  The inner protocol still sees
        # the exact fault-free FIFO stream.
        count = 6
        stream = StreamProtocol(count)
        result = run_election(
            ReliableDelivery(stream, rto=0.5, max_retries=200),
            complete_without_sense(3, seed=7),
            faults=FaultPlan(
                seed=7, jitter=0.8,
                partitions=(Partition(1, 0, 0.0, 4.0),),
            ),
            seed=7,
            require_leader=False,
        )
        expected = list(range(1, count + 1))
        for node in stream.nodes:
            for port in range(2):
                assert [v for p, v in node.received if p == port] == expected
        assert result.messages_dropped > 0
        assert result.retransmissions > 0
        assert result.packets_abandoned == 0


class TestAcksOnAbandonedPorts:
    """A late ack from a peer already written off must be harmless."""

    def test_late_ack_after_abandonment_does_not_resurrect_the_port(self):
        node, ctx = _arq_node(max_retries=1)
        node.send_reliable(0, Token(1))
        ctx.fire_timer()
        ctx.fire_timer()
        assert 0 in node._dead_ports
        sends_before = len(ctx.sent)
        # The peer was only slow, not dead: its cumulative ack limps in.
        node.receive(0, Ack(1))
        # No crash, no retransmission, no new timer — the port stays dead.
        assert len(ctx.sent) == sends_before
        assert not ctx.timers
        assert 0 in node._dead_ports

    def test_sends_after_abandonment_are_not_pursued(self):
        node, ctx = _arq_node(max_retries=1)
        node.send_reliable(0, Token(1))
        ctx.fire_timer()
        ctx.fire_timer()
        assert 0 in node._dead_ports
        # The inner protocol, oblivious, keeps talking into the black hole.
        node.send_reliable(0, Token(2))
        assert any(
            isinstance(m, Packet) and m.seq == 2 for _, m in ctx.sent
        )
        while ctx.timers:  # drain whatever ladder the send armed
            ctx.fire_timer()
        # Dead ports are skipped: no retransmission, no abandonment double
        # count for the new packet beyond its own buffer entry.
        assert ctx.counters["retransmissions"] == 1

    def test_stale_ack_is_ignored_without_touching_backoff(self):
        node, ctx = _arq_node(max_retries=5)
        node.send_reliable(0, Token(1))
        node.send_reliable(0, Token(2))
        node.receive(0, Ack(2))
        assert node._unacked[0] == {}
        ctx.fire_timer()  # nothing pending: ladder resets quietly
        node.receive(0, Ack(1))  # reordered stale cumulative ack
        assert node._acked[0] == 2
        assert not ctx.timers


class TestAllProtocolsSurviveLoss:
    @pytest.mark.parametrize("name", sorted(registered_protocols()))
    def test_unique_leader_at_n64_under_ten_percent_drop(self, name):
        cls = registered_protocols()[name]
        protocol = ReliableDelivery(cls())
        topology = (
            complete_with_sense_of_direction(64)
            if cls.needs_sense_of_direction
            else complete_without_sense(64, seed=1)
        )
        result = run_election(
            protocol,
            topology,
            faults=FaultPlan(seed=11, drop=0.10, duplicate=0.05),
            seed=1,
        )
        result.verify()
        assert result.messages_dropped > 0
        assert result.protocol == f"REL[{cls().describe()}]"
