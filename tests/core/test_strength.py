"""Unit and property tests for the lexicographic contest strengths."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.strength import Strength, ZERO_STRENGTH

strengths = st.builds(
    Strength,
    st.integers(min_value=-1, max_value=10**6),
    st.integers(min_value=-1, max_value=10**6),
)


class TestOrdering:
    def test_rank_dominates_id(self):
        assert Strength(2, 1).outranks(Strength(1, 999))

    def test_id_breaks_rank_ties(self):
        assert Strength(3, 10).outranks(Strength(3, 9))
        assert not Strength(3, 9).outranks(Strength(3, 10))

    def test_zero_strength_loses_to_any_real_candidate(self):
        assert Strength(0, 0).outranks(ZERO_STRENGTH)

    def test_with_rank_preserves_identity(self):
        s = Strength(3, 42).with_rank(9)
        assert s == Strength(9, 42)

    @given(strengths, strengths)
    def test_outranks_is_antisymmetric(self, a, b):
        if a != b:
            assert a.outranks(b) != b.outranks(a)

    @given(strengths, strengths, strengths)
    def test_outranks_is_transitive(self, a, b, c):
        if a.outranks(b) and b.outranks(c):
            assert a.outranks(c)

    @given(strengths)
    def test_nothing_outranks_itself(self, a):
        assert not a.outranks(a)
