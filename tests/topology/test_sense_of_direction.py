"""Tests for the sense-of-direction laws and the Figure 1 reproduction."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.topology.complete import CompleteTopology, complete_with_sense_of_direction
from repro.topology.sense_of_direction import (
    ascii_figure,
    as_networkx,
    chord_endpoints,
    figure1,
    verify_sense_of_direction,
)


class TestFigure1:
    def test_figure1_is_the_six_node_network(self):
        topo = figure1()
        assert topo.n == 6
        assert topo.num_ports == 5

    def test_figure1_labels_are_valid(self):
        verify_sense_of_direction(figure1())

    def test_hamiltonian_cycle_is_the_distance_one_chords(self):
        cycle = chord_endpoints(figure1(), 1)
        assert cycle == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]

    def test_opposite_chords_pair_up(self):
        topo = figure1()
        # the label-3 chords are their own reverses in a 6-node network
        for src, dst in chord_endpoints(topo, 3):
            assert (dst, src) in chord_endpoints(topo, 3)

    def test_ascii_rendering_mentions_every_label(self):
        art = ascii_figure(figure1())
        for d in range(1, 6):
            assert f"label {d}:" in art


class TestVerification:
    def test_accepts_all_sizes(self):
        for n in (2, 3, 7, 16, 33):
            verify_sense_of_direction(complete_with_sense_of_direction(n))

    def test_rejects_unlabeled_topologies(self):
        from repro.topology.complete import complete_without_sense

        with pytest.raises(ConfigurationError):
            verify_sense_of_direction(complete_without_sense(5))

    def test_rejects_a_forged_labeling(self):
        """A topology claiming sense of direction with scrambled wiring."""
        n = 4
        # Swap two neighbours in one row: labels no longer mean distance.
        rows = [[(p + d) % n for d in range(1, n)] for p in range(n)]
        rows[0][0], rows[0][1] = rows[0][1], rows[0][0]
        forged = CompleteTopology(n, range(n), rows, sense_of_direction=True)
        with pytest.raises(ConfigurationError):
            verify_sense_of_direction(forged)


class TestNetworkxExport:
    def test_exports_labeled_digraph(self):
        graph = as_networkx(figure1())
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 30
        assert graph.edges[0, 2]["label"] == 2
        assert graph.nodes[3]["identity"] == 3
