"""Tests for complete-network topologies and port maps."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.topology.complete import (
    CompleteTopology,
    complete_with_sense_of_direction,
    complete_without_sense,
)


class TestConstruction:
    def test_rejects_tiny_networks(self):
        with pytest.raises(ConfigurationError):
            complete_with_sense_of_direction(1)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            complete_with_sense_of_direction(3, ids=[1, 1, 2])

    def test_rejects_broken_port_maps(self):
        with pytest.raises(ValueError):
            CompleteTopology(
                3, [0, 1, 2], [[1, 1], [0, 2], [0, 1]],
                sense_of_direction=False,
            )

    def test_custom_ids_are_respected(self):
        topo = complete_with_sense_of_direction(3, ids=[10, 20, 30])
        assert topo.id_at(1) == 20
        assert topo.position_of(30) == 2


class TestSenseOfDirectionWiring:
    @given(st.integers(min_value=2, max_value=40))
    def test_port_d_reaches_distance_d(self, n):
        topo = complete_with_sense_of_direction(n)
        for position in range(n):
            for port in range(topo.num_ports):
                assert topo.neighbor(position, port) == (position + port + 1) % n
                assert topo.label(position, port) == port + 1

    def test_port_with_label_roundtrips(self):
        topo = complete_with_sense_of_direction(8)
        for d in range(1, 8):
            port = topo.port_with_label(0, d)
            assert topo.label(0, port) == d

    def test_port_with_label_bounds(self):
        topo = complete_with_sense_of_direction(8)
        with pytest.raises(ConfigurationError):
            topo.port_with_label(0, 0)
        with pytest.raises(ConfigurationError):
            topo.port_with_label(0, 8)

    def test_unlabeled_networks_have_no_labels(self):
        topo = complete_without_sense(5, seed=0)
        assert topo.label(0, 0) is None
        with pytest.raises(ConfigurationError):
            topo.port_with_label(0, 1)


class TestReversePorts:
    @given(st.integers(min_value=2, max_value=25),
           st.integers(min_value=0, max_value=10**6))
    def test_reverse_port_is_an_involution(self, n, seed):
        """Property: following a link and coming back lands on your port."""
        topo = complete_without_sense(n, seed=seed)
        for position in range(n):
            for port in range(topo.num_ports):
                far = topo.neighbor(position, port)
                back = topo.reverse_port(position, port)
                assert topo.neighbor(far, back) == position
                assert topo.reverse_port(far, back) == port

    def test_port_to_is_inverse_of_neighbor(self):
        topo = complete_without_sense(7, seed=3)
        for position in range(7):
            for port in range(topo.num_ports):
                far = topo.neighbor(position, port)
                assert topo.port_to(position, far) == port
