"""Tests for the port-assignment strategies (the unlabeled-model adversary)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.topology.ports import (
    HotspotPorts,
    IdOrderedPorts,
    RandomPorts,
    UpDownPorts,
    validate_port_map,
)

STRATEGIES = [RandomPorts(), IdOrderedPorts(), UpDownPorts(3), HotspotPorts(0)]


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: type(s).__name__)
@given(n=st.integers(min_value=8, max_value=30),
       seed=st.integers(min_value=0, max_value=10**6))
def test_every_strategy_yields_permutations(strategy, n, seed):
    """Property: every port map is a permutation of the other positions."""
    ids = list(range(n))
    rng = random.Random(seed)
    for position in range(n):
        port_map = strategy.assign(n, position, ids, rng)
        validate_port_map(n, position, port_map)


class TestIdOrderedPorts:
    def test_orders_by_identity_not_position(self):
        ids = [30, 10, 20]
        port_map = IdOrderedPorts().assign(3, 0, ids, random.Random(0))
        assert port_map == [1, 2]  # id 10 first, then id 20


class TestUpDownPorts:
    def test_first_k_ports_are_up_neighbours_in_identity_space(self):
        n, k = 12, 3
        ids = list(range(n))
        for position in range(n):
            port_map = UpDownPorts(k).assign(n, position, ids, random.Random(0))
            ups = [ids[p] for p in port_map[:k]]
            assert ups == [(position + off) % n for off in range(1, k + 1)]

    def test_next_k_ports_are_down_neighbours(self):
        n, k = 12, 3
        ids = list(range(n))
        port_map = UpDownPorts(k).assign(n, 5, ids, random.Random(0))
        downs = [ids[p] for p in port_map[k:2 * k]]
        assert downs == [(5 - off) % n for off in range(1, k + 1)]

    def test_works_with_permuted_identities(self):
        n, k = 8, 2
        ids = [3, 7, 1, 5, 0, 6, 2, 4]
        port_map = UpDownPorts(k).assign(n, 0, ids, random.Random(0))
        validate_port_map(n, 0, port_map)
        # node 0 has id 3; Up = ids 4, 5 at positions 7 and 3
        assert port_map[:k] == [7, 3]

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            UpDownPorts(0)


class TestHotspotPorts:
    def test_everyone_points_at_the_victim_first(self):
        n = 10
        ids = list(range(n))
        strategy = HotspotPorts(victim_id=0)
        for position in range(1, n):
            port_map = strategy.assign(n, position, ids, random.Random(position))
            assert port_map[0] == 0

    def test_victim_gets_an_ordinary_map(self):
        port_map = HotspotPorts(victim_id=0).assign(
            6, 0, list(range(6)), random.Random(0)
        )
        validate_port_map(6, 0, port_map)


class TestRandomPorts:
    def test_same_rng_state_reproduces_wiring(self):
        ids = list(range(9))
        a = RandomPorts().assign(9, 2, ids, random.Random(42))
        b = RandomPorts().assign(9, 2, ids, random.Random(42))
        assert a == b
