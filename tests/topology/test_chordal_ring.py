"""Tests for the ALSZ89 chordal-ring substrate."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.topology.chordal_ring import ChordalRingTopology, power_of_two_chords


class TestChordSets:
    def test_power_of_two_chords(self):
        assert power_of_two_chords(16) == [1, 2, 4, 8]
        assert power_of_two_chords(100) == [1, 2, 4, 8, 16, 32, 64]

    def test_degree_is_logarithmic(self):
        for n in (16, 64, 256, 1024):
            ring = ChordalRingTopology(n)
            assert ring.degree_per_node() <= 2 * math.ceil(math.log2(n)) + 2

    def test_chord_set_is_closed_under_reversal(self):
        ring = ChordalRingTopology(20)
        for d in ring.chords:
            assert (20 - d) % 20 in ring.chords

    def test_ring_edge_required(self):
        with pytest.raises(ConfigurationError, match="chord 1"):
            ChordalRingTopology(10, chords=[2, 4])

    def test_chord_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            ChordalRingTopology(10, chords=[1, 10])


class TestStructure:
    def test_neighbor_and_reverse_port_roundtrip(self):
        ring = ChordalRingTopology(24)
        for position in range(24):
            for port in range(ring.num_ports):
                far = ring.neighbor(position, port)
                back = ring.reverse_port(position, port)
                assert ring.neighbor(far, back) == position

    def test_labels_are_chord_distances(self):
        ring = ChordalRingTopology(16)
        for port in range(ring.num_ports):
            d = ring.label(0, port)
            assert ring.neighbor(0, port) == d % 16

    def test_port_with_label_rejects_missing_chords(self):
        ring = ChordalRingTopology(16)
        with pytest.raises(ConfigurationError, match="no chord"):
            ring.port_with_label(0, 3)

    def test_non_adjacent_positions_rejected(self):
        ring = ChordalRingTopology(16, chords=[1, 4])
        with pytest.raises(ConfigurationError, match="not chord-adjacent"):
            ring.port_to(0, 2)

    def test_custom_ids(self):
        ring = ChordalRingTopology(4, ids=[5, 6, 7, 8])
        assert ring.id_at(2) == 7
        assert ring.position_of(8) == 3
