"""Tests for the analysis toolkit (complexity fits, stats, tables)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.complexity import (
    boundedness_ratio,
    crossover,
    doubling_ratios,
    loglog_slope,
)
from repro.analysis.stats import geometric_mean, summarize
from repro.analysis.tables import render_kv, render_table
from repro.core.errors import ConfigurationError


class TestLogLogSlope:
    def test_recovers_exact_exponents(self):
        xs = [2, 4, 8, 16, 32]
        assert loglog_slope(xs, [x**2 for x in xs]) == pytest.approx(2.0)
        assert loglog_slope(xs, [5 * x for x in xs]) == pytest.approx(1.0)
        assert loglog_slope(xs, [7.0] * 5) == pytest.approx(0.0)

    def test_nlogn_sits_between_linear_and_quadratic(self):
        xs = [16, 64, 256, 1024]
        slope = loglog_slope(xs, [x * math.log2(x) for x in xs])
        assert 1.0 < slope < 1.5

    @given(
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.5, max_value=100.0),
    )
    def test_property_power_laws_recovered(self, exponent, constant):
        xs = [2.0, 4.0, 8.0, 16.0]
        ys = [constant * x**exponent for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(exponent, rel=1e-6)

    def test_insufficient_or_invalid_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            loglog_slope([2], [4])
        with pytest.raises(ConfigurationError):
            loglog_slope([2, 4], [0, 4])
        with pytest.raises(ConfigurationError):
            loglog_slope([2, 2], [4, 4])


class TestBoundedness:
    def test_exact_bound_gives_ratio_one(self):
        xs = [2, 4, 8]
        assert boundedness_ratio(xs, [3 * x for x in xs], lambda x: x) == 1.0

    def test_wrong_shape_inflates_the_ratio(self):
        xs = [2, 4, 8, 16]
        ratio = boundedness_ratio(xs, [x**2 for x in xs], lambda x: x)
        assert ratio == pytest.approx(8.0)


class TestCrossover:
    def test_finds_the_first_win(self):
        xs = [1, 2, 3, 4]
        assert crossover(xs, [9, 7, 3, 1], [5, 5, 5, 5]) == 3

    def test_none_when_never_winning(self):
        assert crossover([1, 2], [9, 9], [5, 5]) is None


class TestDoublingRatios:
    def test_linear_series_doubles(self):
        assert doubling_ratios([2, 4, 8], [10, 20, 40]) == [2.0, 2.0]

    def test_requires_a_doubling_sweep(self):
        with pytest.raises(ConfigurationError):
            doubling_ratios([2, 5], [1, 2])


class TestStats:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert (s.count, s.mean, s.minimum, s.maximum) == (3, 2.0, 1.0, 3.0)
        assert s.std == pytest.approx(1.0)

    def test_single_sample_has_zero_std(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert str(s) == "5.0"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, -1.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=20))
    def test_property_mean_within_range(self, samples):
        s = summarize(samples)
        tolerance = 1e-12 * max(abs(s.minimum), abs(s.maximum))
        assert s.minimum - tolerance <= s.mean <= s.maximum + tolerance


class TestTables:
    def test_render_table_aligns_and_pipes(self):
        text = render_table(("N", "msgs"), [(16, 100), (256, 1600)])
        lines = text.splitlines()
        assert lines[0].startswith("| N")
        assert set(lines[1]) <= {"|", "-"}
        assert "256" in lines[3]

    def test_floats_formatted_compactly(self):
        text = render_table(("x",), [(3.14159,), (float("nan"),)])
        assert "3.14" in text and "-" in text

    def test_render_kv(self):
        text = render_kv("Findings", [("slope", 1.02), ("n", 256)])
        assert "Findings" in text
        assert "slope" in text and "1.02" in text
