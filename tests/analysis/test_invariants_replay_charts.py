"""Tests for the invariant audit, replay renderer and sparkline charts."""

from __future__ import annotations

import pytest

from repro.analysis.charts import chart_series, sparkline
from repro.analysis.invariants import (
    ALL_INVARIANTS,
    assert_captured_at_most_once,
    assert_fifo_per_link,
    assert_levels_monotone,
    assert_no_losses,
    assert_single_declaration,
    assert_wakeups_before_activity,
    audit,
)
from repro.analysis.replay import render_replay
from repro.core.errors import ConfigurationError, ProtocolViolation
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import UniformDelay
from repro.sim.network import Network
from repro.sim.tracing import TraceEvent, Tracer
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


def traced_run(protocol, topology, **kwargs):
    return Network(protocol, topology, trace=True, **kwargs).run()


class TestAuditOnRealRuns:
    @pytest.mark.parametrize(
        "protocol,sense",
        [(ProtocolA(), True), (ProtocolC(), True),
         (ProtocolE(), False), (ProtocolG(k=4), False)],
        ids=["A", "C", "E", "G"],
    )
    def test_full_audit_passes(self, protocol, sense):
        topology = (
            complete_with_sense_of_direction(16)
            if sense
            else complete_without_sense(16, seed=2)
        )
        result = traced_run(protocol, topology, seed=2)
        audit(result)

    def test_audit_passes_under_random_delays(self):
        result = traced_run(
            ProtocolE(), complete_without_sense(20, seed=4),
            delays=UniformDelay(0.05, 1.0), seed=4,
        )
        audit(result)

    def test_untraced_run_is_rejected(self):
        result = Network(
            ProtocolE(), complete_without_sense(8, seed=0)
        ).run()
        with pytest.raises(ProtocolViolation, match="trace=True"):
            audit(result)


def forged_result(events, **overrides):
    """A result carrying a hand-written trace."""
    from tests.core.test_results import make_result, snap

    tracer = Tracer(enabled=True, events=list(events))
    return make_result(
        [snap(0, leader=True, base=True), snap(1)], trace=tracer, **overrides
    )


class TestCheckersCatchViolations:
    def test_fifo_checker_catches_reordering(self):
        events = [
            TraceEvent(0.0, "send", 0, (("message", "X"), ("to", 1))),
            TraceEvent(0.1, "send", 0, (("message", "Y"), ("to", 1))),
            TraceEvent(1.0, "deliver", 1, (("message", "Y"), ("sender", 0))),
            TraceEvent(1.1, "deliver", 1, (("message", "X"), ("sender", 0))),
        ]
        with pytest.raises(ProtocolViolation, match="FIFO"):
            assert_fifo_per_link(forged_result(events))

    def test_loss_checker_catches_a_dropped_message(self):
        events = [
            TraceEvent(0.0, "send", 0, (("message", "X"), ("to", 1))),
        ]
        with pytest.raises(ProtocolViolation, match="loss"):
            assert_no_losses(forged_result(events))

    def test_level_checker_catches_regression(self):
        events = [
            TraceEvent(0.0, "level", 0, (("level", 3),)),
            TraceEvent(1.0, "level", 0, (("level", 2),)),
        ]
        with pytest.raises(ProtocolViolation, match="backwards"):
            assert_levels_monotone(forged_result(events))

    def test_capture_checker_catches_double_capture(self):
        events = [
            TraceEvent(0.0, "captured_by", 5, (("cand", 1),)),
            TraceEvent(1.0, "captured_by", 5, (("cand", 2),)),
        ]
        with pytest.raises(ProtocolViolation, match="more than once"):
            assert_captured_at_most_once(forged_result(events))

    def test_declaration_checker_counts_leader_events(self):
        events = [
            TraceEvent(0.0, "leader", 0, ()),
            TraceEvent(1.0, "leader", 1, ()),
        ]
        with pytest.raises(ProtocolViolation, match="declarations"):
            assert_single_declaration(forged_result(events))

    def test_wake_checker_catches_sleep_sending(self):
        events = [
            TraceEvent(0.0, "send", 3, (("message", "X"), ("to", 1))),
        ]
        with pytest.raises(ProtocolViolation, match="before waking"):
            assert_wakeups_before_activity(forged_result(events))

    def test_battery_is_complete(self):
        assert len(ALL_INVARIANTS) == 6


class TestReplay:
    def test_narrates_the_key_moments(self):
        result = traced_run(
            ProtocolA(), complete_with_sense_of_direction(8), seed=0
        )
        text = render_replay(result)
        assert "wakes" in text
        assert "LEADER" in text
        assert f"leader={result.leader_id}" in text

    def test_verbose_mode_lists_messages(self):
        result = traced_run(
            ProtocolA(), complete_with_sense_of_direction(4), seed=0
        )
        text = render_replay(result, include_messages=True)
        assert "Capture" in text and "->" in text

    def test_untraced_run_degrades_gracefully(self):
        result = Network(
            ProtocolE(), complete_without_sense(4, seed=0)
        ).run()
        assert "no trace" in render_replay(result)


class TestCharts:
    def test_sparkline_shape(self):
        line = sparkline([1, 2, 4, 8, 16], log_scale=True)
        assert len(line) == 5
        assert line[0] < line[-1]  # rising bars

    def test_flat_series_is_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sparkline([])
        with pytest.raises(ConfigurationError):
            sparkline([0, 1], log_scale=True)

    def test_chart_series_aligns_labels(self):
        text = chart_series([16, 64], {"C": [98, 418], "B": [230, 1542]})
        assert "C  " in text and "B  " in text
        assert "(98 .. 418)" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="points"):
            chart_series([1, 2], {"x": [1.0]})
