"""Golden-value regression tests.

Sense-of-direction runs under simultaneous wake-up and unit delays are
fully deterministic (the wiring is fixed by the labels, ties break by
sequence number), so their exact message counts, election times and winners
are stable fingerprints of protocol behaviour.  Any change to a contest
rule, a phase boundary, or the kernel's tie-breaking shows up here first —
with a diff that says exactly which protocol moved and by how much.

If a change is *intentional* (e.g. a message saved by a better rule),
update the table and say why in the commit.
"""

from __future__ import annotations

import pytest

from repro import (
    ChangRoberts,
    HirschbergSinclair,
    LMW86,
    ProtocolA,
    ProtocolAPrime,
    ProtocolB,
    ProtocolC,
    complete_with_sense_of_direction,
    run_election,
)

#: (protocol key, N) -> (messages_total, election_time, leader_id)
GOLDENS = {
    ("CR", 16): (31, 16.0, 15),
    ("HS", 16): (152, 46.0, 15),
    ("LMW86", 16): (62, 18.0, 15),
    ("A", 16): (50, 12.0, 15),
    ("A'", 16): (82, 12.0, 15),
    ("B", 16): (230, 20.0, 15),
    ("C", 16): (98, 16.0, 15),
    ("CR", 64): (127, 64.0, 63),
    ("HS", 64): (632, 190.0, 63),
    ("LMW86", 64): (254, 66.0, 63),
    ("A", 64): (170, 20.0, 63),
    ("A'", 64): (298, 20.0, 63),
    ("B", 64): (1542, 32.0, 63),
    ("C", 64): (418, 28.0, 63),
}

FACTORIES = {
    "CR": ChangRoberts,
    "HS": HirschbergSinclair,
    "LMW86": LMW86,
    "A": ProtocolA,
    "A'": ProtocolAPrime,
    "B": ProtocolB,
    "C": ProtocolC,
}


@pytest.mark.parametrize(
    "key,n", sorted(GOLDENS), ids=[f"{k}-N{n}" for k, n in sorted(GOLDENS)]
)
def test_golden_run(key, n):
    result = run_election(FACTORIES[key](), complete_with_sense_of_direction(n))
    expected = GOLDENS[(key, n)]
    actual = (result.messages_total, result.election_time, result.leader_id)
    assert actual == expected, (
        f"{key} at N={n} moved: expected {expected}, got {actual}. "
        "If intentional, update GOLDENS and explain the behaviour change."
    )


def test_goldens_are_independent_of_the_seed():
    """These runs involve no randomness at all: the seed must not matter."""
    for seed in (0, 123):
        result = run_election(
            ProtocolC(), complete_with_sense_of_direction(16), seed=seed
        )
        assert (result.messages_total, result.leader_id) == (98, 15)
