"""Shared determinism cases: fixed (protocol, topology, seed) runs.

The kernel's determinism contract is that a run is a pure function of its
configuration: same protocol, same topology, same seed, same adversaries →
identical :class:`~repro.core.results.ElectionResult` fields, across kernel
rewrites and across serial/parallel sweep execution.  This module holds the
canonical case list and the fingerprint function; the fixture file
``tests/fixtures/determinism.json`` freezes what the seed kernel produced.

Regenerate (only when a behaviour change is *intended*) with::

    PYTHONPATH=src python -m tests.sim.determinism_cases --write
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.adversary import wakeup
from repro.adversary.delays import congested_links, worst_case_unit
from repro.core.reliable import ReliableDelivery
from repro.core.results import ElectionResult
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.random import RandomizedSampling, RandomizedTradeoff
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import UniformDelay
from repro.sim.faults import FaultPlan, isolate
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

FIXTURE_PATH = Path(__file__).parent.parent / "fixtures" / "determinism.json"


def _case_c64() -> ElectionResult:
    return run_election(ProtocolC(), complete_with_sense_of_direction(64))


def _case_b32_unit() -> ElectionResult:
    return run_election(
        ProtocolB(),
        complete_with_sense_of_direction(32),
        delays=worst_case_unit(),
    )


def _case_c32_chain() -> ElectionResult:
    return run_election(
        ProtocolC(),
        complete_with_sense_of_direction(32),
        delays=worst_case_unit(),
        wakeup=wakeup.staggered_chain(),
    )


def _case_d32() -> ElectionResult:
    return run_election(ProtocolD(), complete_without_sense(32, seed=1), seed=1)


def _case_e64_uniform() -> ElectionResult:
    # UniformDelay consumes the run RNG per message: this case pins the
    # exact RNG draw order of the send path, not just the event order.
    return run_election(
        ProtocolE(),
        complete_without_sense(64, seed=2),
        delays=UniformDelay(0.05, 1.0),
        seed=2,
    )


def _case_g64_k8() -> ElectionResult:
    return run_election(
        ProtocolG(k=8),
        complete_without_sense(64, seed=3),
        delays=worst_case_unit(),
        seed=3,
    )


def _case_r64_lone_base() -> ElectionResult:
    return run_election(
        ProtocolR(),
        complete_without_sense(64, seed=5),
        wakeup={0: 0.0},
        seed=5,
    )


def _case_e32_congested() -> ElectionResult:
    return run_election(
        ProtocolE(),
        complete_without_sense(32, seed=7),
        delays=congested_links(),
        seed=7,
    )


def _case_e32_lossy_rel() -> ElectionResult:
    # The full fault stack: drop + duplication + jitter, masked by the
    # retransmission overlay.  Pins the fault RNG streams, the overlay's
    # timer schedule, and every new counter.
    return run_election(
        ReliableDelivery(ProtocolE()),
        complete_without_sense(32, seed=9),
        faults=FaultPlan(seed=9, drop=0.10, duplicate=0.05, jitter=0.25),
        seed=9,
    )


def _case_g32_partition_rel() -> ElectionResult:
    topology = complete_without_sense(32, seed=4)
    victim = max(topology.ids)
    return run_election(
        ReliableDelivery(ProtocolG(k=4)),
        topology,
        faults=FaultPlan(
            seed=4, drop=0.05,
            partitions=isolate(victim, topology.ids, 1.0, 4.0),
        ),
        seed=4,
    )


def _case_e16_crash() -> ElectionResult:
    # Mid-run crash-stop via the plan (no overlay): the run may or may not
    # elect — the digest pins whatever the kernel does, including the
    # crashed-positions report.
    return run_election(
        ProtocolE(),
        complete_without_sense(16, seed=6),
        faults=FaultPlan(seed=6, crashes={3: 1.0, 11: 2.5}),
        seed=6,
        require_leader=False,
    )


def _case_rs64() -> ElectionResult:
    # Randomized candidate sampling: every coin flip comes from the
    # per-node streams derived from the run seed, so the fingerprint —
    # including which nodes stood and who won — is pure configuration.
    return run_election(
        RandomizedSampling(),
        complete_without_sense(64, seed=11),
        seed=11,
    )


def _case_rt64_unit() -> ElectionResult:
    return run_election(
        RandomizedTradeoff(),
        complete_without_sense(64, seed=12),
        delays=worst_case_unit(),
        seed=12,
    )


def _case_rs32_lossy_rel() -> ElectionResult:
    # Coin streams under the fault stack: node draws must stay decoupled
    # from the fault-layer RNGs (a drop must not shift a candidacy flip).
    return run_election(
        ReliableDelivery(RandomizedSampling()),
        complete_without_sense(32, seed=13),
        faults=FaultPlan(seed=13, drop=0.10, duplicate=0.05, jitter=0.25),
        seed=13,
    )


CASES: dict[str, Any] = {
    "C@64": _case_c64,
    "B@32-unit": _case_b32_unit,
    "C@32-chain": _case_c32_chain,
    "D@32": _case_d32,
    "E@64-uniform": _case_e64_uniform,
    "G@64-k8": _case_g64_k8,
    "R@64-lone-base": _case_r64_lone_base,
    "E@32-congested": _case_e32_congested,
    "E@32-lossy-rel": _case_e32_lossy_rel,
    "G@32-partition-rel": _case_g32_partition_rel,
    "E@16-crash": _case_e16_crash,
    "RS@64": _case_rs64,
    "RT@64-unit": _case_rt64_unit,
    "RS@32-lossy-rel": _case_rs32_lossy_rel,
}


def fingerprint(result: ElectionResult) -> dict[str, Any]:
    """A JSON-stable digest of every deterministic result field."""
    digest: dict[str, Any] = {
        "n": result.n,
        "leader_id": result.leader_id,
        "leader_position": result.leader_position,
        "elected_at": result.elected_at,
        "election_time": result.election_time,
        "election_depth": result.election_depth,
        "messages_total": result.messages_total,
        "bits_total": result.bits_total,
        "messages_by_type": dict(sorted(result.messages_by_type.items())),
        "max_depth": result.max_depth,
        "quiescent_at": result.quiescent_at,
        "first_wake_time": result.first_wake_time,
        "last_wake_time": result.last_wake_time,
        "base_positions": list(result.base_positions),
        "max_channel_load": result.max_channel_load,
    }
    # Fault-layer and overlay fields join the digest only when active, so
    # fixtures frozen before the fault layer existed stay byte-identical.
    for name in (
        "messages_dropped", "messages_duplicated", "messages_jittered",
        "retransmissions", "duplicates_suppressed", "packets_abandoned",
    ):
        value = getattr(result, name)
        if value:
            digest[name] = value
    if result.crashed_positions:
        digest["crashed_positions"] = list(result.crashed_positions)
    return digest


def fingerprint_bytes(result: ElectionResult) -> bytes:
    """Byte-exact serialisation used by the determinism assertions."""
    return json.dumps(fingerprint(result), sort_keys=True).encode()


def assert_digest_stable(build: Any, *, label: str = "digest") -> Any:
    """Assert ``build(parallel)`` digests agree across execution modes.

    ``build`` is invoked once with ``False`` (serial) and once with
    ``True`` (fork pool) and must return a comparable digest — bytes, a
    hex string, or a JSON-able structure.  This is the shared form of
    the serial-vs-parallel assertion the determinism suite and the
    matrix runner both owe; returns the serial digest for further
    pinning.
    """
    serial = build(False)
    parallel = build(True)
    assert serial == parallel, (
        f"{label} diverged between serial and parallel execution:\n"
        f"  serial:   {serial!r}\n"
        f"  parallel: {parallel!r}"
    )
    return serial


def run_all_cases() -> dict[str, dict[str, Any]]:
    """Run every case and return its fingerprint, keyed by case name."""
    return {name: fingerprint(run()) for name, run in CASES.items()}


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true", help="regenerate the fixture file"
    )
    args = parser.parse_args()
    fingerprints = run_all_cases()
    if args.write:
        FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE_PATH.write_text(json.dumps(fingerprints, indent=1, sort_keys=True))
        print(f"wrote {len(fingerprints)} fixtures to {FIXTURE_PATH}")
    else:
        print(json.dumps(fingerprints, indent=1, sort_keys=True))


if __name__ == "__main__":
    main()
