"""Mid-run crash injection tests — the model boundary, demonstrated.

The paper's fault tolerance covers *initial* site failures only; a purely
asynchronous network cannot detect a mid-run crash (no timeouts), so a
candidate waiting on a crashed node waits forever.  These tests pin both
halves: the runtime's crash semantics, and the protocols' documented
non-tolerance of mid-run crashes.
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import audit
from repro.core.errors import ProtocolViolation, SimulationError
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.sim.network import Network, run_election
from repro.topology.complete import complete_without_sense


class TestCrashSemantics:
    def test_crashed_node_drops_messages_from_the_crash_instant(self):
        topo = complete_without_sense(6, seed=0)
        victim = 3
        result = run_election(
            ProtocolD(), topo, crash_schedule={victim: 0.5},
            require_leader=False,
        )
        assert result.crashed_positions == (victim,)
        # The elect reaching it at t=1 is dropped, so its grant never
        # exists and the would-be winner cannot finish.
        assert result.leader_id is None

    def test_crash_before_wake_prevents_candidacy(self):
        topo = complete_without_sense(6, seed=0)
        result = run_election(
            ProtocolD(), topo, wakeup={0: 0.0, 5: 2.0},
            crash_schedule={5: 1.0}, require_leader=False,
        )
        snap = result.node_snapshots[5]
        assert not snap["awake"]

    def test_crash_after_declaration_is_not_a_successful_election(self):
        """A leader that crashes after declaring leaves no leader among the
        survivors: the run records who declared, but must not verify."""
        topo = complete_without_sense(6, seed=0)
        result = run_election(
            ProtocolD(), topo, crash_schedule={5: 10.0},
            require_leader=False,
        )
        # The declaration itself is still on the record...
        assert result.leader_id == 5
        assert result.crashed_positions == (5,)
        assert result.leader_crashed
        # ...but the election did not succeed: no survivor is leader.
        with pytest.raises(ProtocolViolation, match="crashed after"):
            result.verify()
        with pytest.raises(ProtocolViolation):
            run_election(ProtocolD(), topo, crash_schedule={5: 10.0})

    def test_crash_at_time_zero_is_distinguishable_from_initial_failure(self):
        """A node crashed at t=0.0 existed (and is reported as crashed);
        an initially-failed node never did.  The runtime keeps the two
        populations disjoint and rejects a position listed in both."""
        topo = complete_without_sense(6, seed=0)
        crashed = run_election(
            ProtocolD(), topo, crash_schedule={3: 0.0}, require_leader=False
        )
        failed = run_election(
            ProtocolD(), topo, failed_positions={3}, require_leader=False
        )
        assert crashed.crashed_positions == (3,)
        assert crashed.failed_positions == ()
        assert failed.failed_positions == (3,)
        assert failed.crashed_positions == ()
        # Both kill the victim before it can act...
        assert not crashed.node_snapshots[3]["awake"]
        assert not failed.node_snapshots[3]["awake"]
        # ...but only the crash is an event with a position on the record.
        with pytest.raises(SimulationError, match="both initially failed"):
            Network(
                ProtocolD(), topo,
                failed_positions={3}, crash_schedule={3: 0.0},
            )

    def test_negative_crash_time_rejected_at_construction(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="negative crash time"):
            Network(ProtocolD(), topo, crash_schedule={1: -0.5})

    def test_out_of_range_crash_rejected(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="out of range"):
            Network(ProtocolD(), topo, crash_schedule={7: 1.0})

    def test_trace_records_the_crash(self):
        topo = complete_without_sense(6, seed=0)
        network = Network(
            ProtocolD(), topo, crash_schedule={2: 1.5}, trace=True
        )
        result = network.run(require_leader=False)
        crashes = list(result.trace.of_kind("crash"))
        assert [e.node for e in crashes] == [2]

    def test_invariant_audit_tolerates_crash_drops(self):
        topo = complete_without_sense(8, seed=1)
        network = Network(
            ProtocolE(), topo, crash_schedule={0: 2.0}, trace=True
        )
        result = network.run(require_leader=False)
        audit_ok = True
        try:
            from repro.analysis.invariants import assert_no_losses

            assert_no_losses(result)
        except Exception:
            audit_ok = False
        assert audit_ok


class TestModelBoundary:
    """The paper's protocols do NOT tolerate mid-run crashes — by design."""

    def test_e_hangs_when_its_next_target_crashes(self):
        """Sequential capture blocks forever on a crashed responder —
        there is no timeout in the asynchronous model to detect it."""
        topo = complete_without_sense(8, seed=0)
        victim = topo.neighbor(7, 1)  # the winner's second target
        result = run_election(
            ProtocolE(), topo, wakeup={7: 0.0},
            crash_schedule={victim: 1.5},
            require_leader=False,
        )
        assert result.leader_id is None
        winner = result.node_snapshots[7]
        assert winner["role"] == "candidate"  # alive, waiting forever

    def test_even_the_fault_tolerant_protocol_only_covers_initial_failures(self):
        """FT's redundancy window handles nodes dead from the start; crash
        ENOUGH nodes mid-run and no majority can ever assemble."""
        n = 9
        topo = complete_without_sense(n, seed=2)
        # Crash 5 of 9 just after the run starts: only 4 live nodes remain,
        # below the majority threshold of 1 + n//2 = 5 members.
        crash = {p: 0.4 for p in range(5)}
        result = run_election(
            FaultTolerantElection(max_failures=4), topo,
            wakeup={p: 0.0 for p in range(5, n)},
            crash_schedule=crash, require_leader=False,
        )
        assert result.leader_id is None

    def test_initial_failures_remain_fine_under_the_same_budget(self):
        n = 9
        topo = complete_without_sense(n, seed=2)
        result = run_election(
            FaultTolerantElection(max_failures=4), topo,
            failed_positions={0, 1, 2, 3},
        )
        assert result.leader_position not in {0, 1, 2, 3}
