"""Mid-run crash injection tests — the model boundary, demonstrated.

The paper's fault tolerance covers *initial* site failures only; a purely
asynchronous network cannot detect a mid-run crash (no timeouts), so a
candidate waiting on a crashed node waits forever.  These tests pin both
halves: the runtime's crash semantics, and the protocols' documented
non-tolerance of mid-run crashes.
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import audit
from repro.core.errors import SimulationError
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.sim.network import Network, run_election
from repro.topology.complete import complete_without_sense


class TestCrashSemantics:
    def test_crashed_node_drops_messages_from_the_crash_instant(self):
        topo = complete_without_sense(6, seed=0)
        victim = 3
        result = run_election(
            ProtocolD(), topo, crash_schedule={victim: 0.5},
            require_leader=False,
        )
        assert result.crashed_positions == (victim,)
        # The elect reaching it at t=1 is dropped, so its grant never
        # exists and the would-be winner cannot finish.
        assert result.leader_id is None

    def test_crash_before_wake_prevents_candidacy(self):
        topo = complete_without_sense(6, seed=0)
        result = run_election(
            ProtocolD(), topo, wakeup={0: 0.0, 5: 2.0},
            crash_schedule={5: 1.0}, require_leader=False,
        )
        snap = result.node_snapshots[5]
        assert not snap["awake"]

    def test_crash_after_declaration_keeps_the_leader(self):
        """A leader that crashes after declaring still counts: election is
        a one-shot event, not a lease."""
        topo = complete_without_sense(6, seed=0)
        result = run_election(
            ProtocolD(), topo, crash_schedule={5: 10.0},
        )
        assert result.leader_id == 5
        assert result.crashed_positions == (5,)

    def test_out_of_range_crash_rejected(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="out of range"):
            Network(ProtocolD(), topo, crash_schedule={7: 1.0})

    def test_trace_records_the_crash(self):
        topo = complete_without_sense(6, seed=0)
        network = Network(
            ProtocolD(), topo, crash_schedule={2: 1.5}, trace=True
        )
        result = network.run(require_leader=False)
        crashes = list(result.trace.of_kind("crash"))
        assert [e.node for e in crashes] == [2]

    def test_invariant_audit_tolerates_crash_drops(self):
        topo = complete_without_sense(8, seed=1)
        network = Network(
            ProtocolE(), topo, crash_schedule={0: 2.0}, trace=True
        )
        result = network.run(require_leader=False)
        audit_ok = True
        try:
            from repro.analysis.invariants import assert_no_losses

            assert_no_losses(result)
        except Exception:
            audit_ok = False
        assert audit_ok


class TestModelBoundary:
    """The paper's protocols do NOT tolerate mid-run crashes — by design."""

    def test_e_hangs_when_its_next_target_crashes(self):
        """Sequential capture blocks forever on a crashed responder —
        there is no timeout in the asynchronous model to detect it."""
        topo = complete_without_sense(8, seed=0)
        victim = topo.neighbor(7, 1)  # the winner's second target
        result = run_election(
            ProtocolE(), topo, wakeup={7: 0.0},
            crash_schedule={victim: 1.5},
            require_leader=False,
        )
        assert result.leader_id is None
        winner = result.node_snapshots[7]
        assert winner["role"] == "candidate"  # alive, waiting forever

    def test_even_the_fault_tolerant_protocol_only_covers_initial_failures(self):
        """FT's redundancy window handles nodes dead from the start; crash
        ENOUGH nodes mid-run and no majority can ever assemble."""
        n = 9
        topo = complete_without_sense(n, seed=2)
        # Crash 5 of 9 just after the run starts: only 4 live nodes remain,
        # below the majority threshold of 1 + n//2 = 5 members.
        crash = {p: 0.4 for p in range(5)}
        result = run_election(
            FaultTolerantElection(max_failures=4), topo,
            wakeup={p: 0.0 for p in range(5, n)},
            crash_schedule=crash, require_leader=False,
        )
        assert result.leader_id is None

    def test_initial_failures_remain_fine_under_the_same_budget(self):
        n = 9
        topo = complete_without_sense(n, seed=2)
        result = run_election(
            FaultTolerantElection(max_failures=4), topo,
            failed_positions={0, 1, 2, 3},
        )
        assert result.leader_position not in {0, 1, 2, 3}
