"""Kernel-throughput sanity check that rides in tier-1.

Not a benchmark: the full perf tracking lives in
``benchmarks/test_kernel_speed.py`` (which writes ``BENCH_kernel.json``).
This is a tripwire — one small fixed workload, a conservative floor far
below what the tuple-based kernel actually sustains (~170k events/sec on
this workload vs ~75k for the seed kernel), so it only fires on a
catastrophic regression (an accidental O(N) scan per event, tracing left
enabled on the hot path, per-event allocation storms), never on machine
noise.  Budget: well under 10 seconds wall clock including the floor.
"""

from __future__ import annotations

import time

import pytest

from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import Network
from repro.topology.complete import complete_with_sense_of_direction

#: events/sec floor — the seed kernel already beat this comfortably.
MIN_EVENTS_PER_SEC = 25_000.0


@pytest.mark.perf_smoke
def test_kernel_sustains_minimum_throughput():
    topology = complete_with_sense_of_direction(512)
    net = Network(ProtocolC(), topology)
    start = time.perf_counter()
    result = net.run()
    dt = time.perf_counter() - start
    events = net.scheduler.events_processed
    assert result.leader_id is not None
    assert dt < 10.0, f"C@512 took {dt:.1f}s; the kernel is pathologically slow"
    assert events / dt >= MIN_EVENTS_PER_SEC, (
        f"kernel throughput collapsed: {events / dt:.0f} events/sec on "
        f"C@512 (floor {MIN_EVENTS_PER_SEC:.0f})"
    )
