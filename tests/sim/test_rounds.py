"""Tests for the synchronous-rounds executor."""

from __future__ import annotations

import math

import pytest

from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.sim.rounds import run_synchronous
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


class TestRunSynchronous:
    def test_rounds_equal_unit_delay_election_time(self):
        sync = run_synchronous(ProtocolB(), complete_with_sense_of_direction(32))
        assert sync.rounds == int(sync.result.election_time)
        sync.result.verify()

    def test_b_elects_in_logarithmic_rounds(self):
        rounds = {}
        for n in (16, 64, 256):
            sync = run_synchronous(
                ProtocolB(), complete_with_sense_of_direction(n)
            )
            rounds[n] = sync.rounds
            assert sync.rounds <= 8 * math.log2(n)
        # quadrupling N adds a constant number of rounds, not a factor
        assert rounds[256] - rounds[64] <= rounds[64] - rounds[16] + 4

    def test_d_is_two_rounds(self):
        sync = run_synchronous(ProtocolD(), complete_without_sense(24, seed=1))
        assert sync.rounds == 2

    def test_c_matches_b_round_order(self):
        b = run_synchronous(ProtocolB(), complete_with_sense_of_direction(64))
        c = run_synchronous(ProtocolC(), complete_with_sense_of_direction(64))
        assert c.rounds <= b.rounds + 8
        assert c.messages_total < b.messages_total

    def test_trace_dropped_by_default_kept_on_request(self):
        lean = run_synchronous(ProtocolD(), complete_without_sense(8, seed=0))
        assert len(lean.result.trace) == 0
        full = run_synchronous(
            ProtocolD(), complete_without_sense(8, seed=0), trace=True
        )
        assert len(full.result.trace) > 0
