"""Tests for the fault-injection layer (`repro.sim.faults`).

Covers the plan's validation surface, the per-link RNG determinism
contract, zero-rate equivalence (installing an all-quiet plan changes
nothing, byte for byte), partitions, jitter bounds, and the counter/trace
plumbing through the network.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SimulationError
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.sim.delays import UniformDelay
from repro.sim.faults import (
    DROP_LOSS,
    DROP_PARTITION,
    FaultPlan,
    LinkFaults,
    Partition,
    isolate,
)
from repro.sim.network import run_election
from repro.topology.complete import complete_without_sense
from tests.sim.determinism_cases import fingerprint_bytes


class TestValidation:
    def test_total_loss_is_rejected_as_a_partition_in_disguise(self):
        with pytest.raises(SimulationError, match="use a Partition"):
            FaultPlan(drop=1.0)

    @pytest.mark.parametrize("kwargs", [
        {"drop": -0.1}, {"duplicate": 1.5}, {"jitter": -1.0},
    ])
    def test_rates_outside_the_model_are_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            FaultPlan(**kwargs)

    def test_per_link_overrides_are_validated_too(self):
        with pytest.raises(SimulationError):
            FaultPlan(per_link={(0, 1): LinkFaults(drop=1.0)})
        with pytest.raises(SimulationError, match="not \\(src, dst\\)"):
            FaultPlan(per_link={(0, 1, 2): LinkFaults()})

    def test_empty_or_negative_partition_windows_are_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            FaultPlan(partitions=(Partition(0, 1, 2.0, 2.0),))
        with pytest.raises(SimulationError):
            FaultPlan(partitions=(Partition(0, 1, -1.0, 2.0),))

    def test_negative_crash_times_are_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            FaultPlan(crashes={3: -0.5})

    def test_quiet_spec_knows_it(self):
        assert LinkFaults().quiet
        assert not LinkFaults(jitter=0.1).quiet

    def test_describe_names_the_active_dials(self):
        plan = FaultPlan(seed=7, drop=0.1, crashes={1: 2.0})
        assert plan.describe() == "FaultPlan(seed=7, drop=0.1, crashes=1)"


class TestDeterminism:
    def test_two_binds_of_one_plan_judge_identically(self):
        plan = FaultPlan(seed=3, drop=0.3, duplicate=0.2, jitter=0.5)
        a, b = plan.bind(), plan.bind()
        verdicts_a = [a.judge(0, 1, t * 0.1) for t in range(200)]
        verdicts_b = [b.judge(0, 1, t * 0.1) for t in range(200)]
        assert verdicts_a == verdicts_b

    def test_links_own_independent_streams(self):
        plan = FaultPlan(seed=3, drop=0.3)
        interleaved = plan.bind()
        lone = plan.bind()
        # Consuming another link's stream must not perturb (0, 1).
        mixed = []
        for t in range(100):
            interleaved.judge(5, 6, float(t))
            mixed.append(interleaved.judge(0, 1, float(t)))
        assert mixed == [lone.judge(0, 1, float(t)) for t in range(100)]

    def test_same_plan_same_seed_same_run(self):
        plan = FaultPlan(seed=5, drop=0.15, duplicate=0.05, jitter=0.3)

        def run():
            from repro.core.reliable import ReliableDelivery

            return run_election(
                ReliableDelivery(ProtocolE()),
                complete_without_sense(16, seed=2),
                faults=plan,
                seed=2,
            )

        assert fingerprint_bytes(run()) == fingerprint_bytes(run())


class TestZeroRateEquivalence:
    def test_quiet_plan_is_byte_identical_to_no_plan(self):
        def run(faults):
            return run_election(
                ProtocolE(),
                complete_without_sense(24, seed=4),
                delays=UniformDelay(0.05, 1.0),
                faults=faults,
                seed=4,
                trace=True,
            )

        bare = run(None)
        quiet = run(FaultPlan(seed=99))
        assert fingerprint_bytes(bare) == fingerprint_bytes(quiet)
        assert bare.trace.events == quiet.trace.events
        assert not quiet.faults_injected


class TestJudge:
    def test_partition_windows_drop_without_consuming_randomness(self):
        plan = FaultPlan(
            seed=1, drop=0.5,
            partitions=(Partition(0, 1, 2.0, 4.0),),
        )
        active = plan.bind()
        reference = FaultPlan(seed=1, drop=0.5).bind()
        assert active.judge(0, 1, 3.0) == (0, 0.0, 0.0, DROP_PARTITION)
        # The partition verdict above consumed no draws: the streams agree.
        for t in range(50):
            assert active.judge(0, 1, 10.0 + t) == reference.judge(
                0, 1, 10.0 + t
            )

    def test_isolate_cuts_both_directions(self):
        active = FaultPlan(partitions=isolate(2, range(4), 0.0, 1.0)).bind()
        for peer in (0, 1, 3):
            assert active.judge(2, peer, 0.5)[3] == DROP_PARTITION
            assert active.judge(peer, 2, 0.5)[3] == DROP_PARTITION
        assert active.judge(0, 1, 0.5)[3] is None      # bystanders untouched
        assert active.judge(2, 0, 1.0)[3] is None      # window is half-open

    def test_loss_reason_and_copy_counts(self):
        active = FaultPlan(seed=2, drop=0.4, duplicate=0.4).bind()
        verdicts = [active.judge(0, 1, float(t)) for t in range(500)]
        reasons = {v[3] for v in verdicts}
        copies = {v[0] for v in verdicts}
        assert reasons == {None, DROP_LOSS}
        assert copies == {0, 1, 2}

    def test_jitter_stays_within_its_bound(self):
        bound = 0.75
        active = FaultPlan(seed=8, jitter=bound, duplicate=0.5).bind()
        for t in range(500):
            copies, jitter, dup_jitter, reason = active.judge(0, 1, float(t))
            assert reason is None
            assert 0.0 <= jitter < bound
            assert 0.0 <= dup_jitter < bound


class TestNetworkPlumbing:
    def test_counters_and_traces_flow_through_a_lossy_run(self):
        from repro.core.reliable import ReliableDelivery

        result = run_election(
            ReliableDelivery(ProtocolE()),
            complete_without_sense(16, seed=3),
            faults=FaultPlan(seed=3, drop=0.2, duplicate=0.1, jitter=0.3),
            seed=3,
            trace=True,
        )
        result.verify()
        assert result.faults_injected
        assert result.messages_dropped == len(list(result.trace.of_kind("drop")))
        assert result.messages_duplicated == len(
            list(result.trace.of_kind("duplicate"))
        )
        assert result.messages_jittered == len(
            list(result.trace.of_kind("jitter"))
        )
        drop_reasons = {e.get("reason") for e in result.trace.of_kind("drop")}
        assert drop_reasons == {DROP_LOSS}

    def test_plan_crashes_merge_with_the_crash_schedule(self):
        with pytest.raises(SimulationError, match="conflict"):
            run_election(
                ProtocolE(),
                complete_without_sense(8, seed=1),
                crash_schedule={2: 1.0},
                faults=FaultPlan(crashes={2: 3.0}),
                require_leader=False,
            )
