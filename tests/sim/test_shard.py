"""Sharded-kernel tests: the digest contract, budgets, gating, transport.

The sharded kernel's one hard promise (docs/performance.md, "Sharded
execution") is **digest equality**: for any shardable configuration, a
sharded run must agree with the serial kernel on every deterministic
result field — the same fingerprint the determinism suite pins — at any
shard count, in-process or forked, faults included.  These tests enforce
that promise against the committed seed fixtures, plus the global
livelock budget, the configuration gates, and the packed-array codec.

The ``shard_smoke`` marker is the CI smoke leg: small-N, two shards,
digest-checked against the frozen fixture file.
"""

from __future__ import annotations

import json

import pytest

from dataclasses import dataclass

from repro.adversary import wakeup as adversary_wakeup
from repro.adversary.delays import congested_links, worst_case_unit
from repro.core.errors import ConfigurationError, LivelockError
from repro.core.messages import Message
from repro.core.node import Node
from repro.core.protocol import ElectionProtocol
from repro.core.reliable import ReliableDelivery
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.random import RandomizedSampling, RandomizedTradeoff
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import ConstantDelay, HookDelay, UniformDelay
from repro.sim.faults import FaultPlan, isolate
from repro.sim.network import run_election
from repro.sim.scheduler import Scheduler
from repro.sim.shard import (
    MessageCodec,
    ShardedNetwork,
    run_sharded_election,
)
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from tests.sim.determinism_cases import FIXTURE_PATH, fingerprint

# ---------------------------------------------------------------------------
# Shardable mirrors of the determinism cases: same configuration as
# tests/sim/determinism_cases.CASES, parameterised by the runner, so the
# sharded fingerprints can be compared against the frozen seed fixtures.
# E@64-uniform is deliberately absent: UniformDelay consumes the shared
# run RNG and is serial-only (see test_uniform_delay_is_refused).
# ---------------------------------------------------------------------------


def _g32_partition_config():
    topology = complete_without_sense(32, seed=4)
    return {
        "protocol": ReliableDelivery(ProtocolG(k=4)),
        "topology": topology,
        "faults": FaultPlan(
            seed=4, drop=0.05,
            partitions=isolate(max(topology.ids), topology.ids, 1.0, 4.0),
        ),
        "seed": 4,
    }


SHARDABLE_CASES = {
    "C@64": lambda: {
        "protocol": ProtocolC(),
        "topology": complete_with_sense_of_direction(64),
    },
    "B@32-unit": lambda: {
        "protocol": ProtocolB(),
        "topology": complete_with_sense_of_direction(32),
        "delays": worst_case_unit(),
    },
    "C@32-chain": lambda: {
        "protocol": ProtocolC(),
        "topology": complete_with_sense_of_direction(32),
        "delays": worst_case_unit(),
        "wakeup": adversary_wakeup.staggered_chain(),
    },
    "D@32": lambda: {
        "protocol": ProtocolD(),
        "topology": complete_without_sense(32, seed=1),
        "seed": 1,
    },
    "G@64-k8": lambda: {
        "protocol": ProtocolG(k=8),
        "topology": complete_without_sense(64, seed=3),
        "delays": worst_case_unit(),
        "seed": 3,
    },
    "R@64-lone-base": lambda: {
        "protocol": ProtocolR(),
        "topology": complete_without_sense(64, seed=5),
        "wakeup": {0: 0.0},
        "seed": 5,
    },
    "E@32-congested": lambda: {
        "protocol": ProtocolE(),
        "topology": complete_without_sense(32, seed=7),
        "delays": congested_links(),
        "seed": 7,
    },
    "E@32-lossy-rel": lambda: {
        "protocol": ReliableDelivery(ProtocolE()),
        "topology": complete_without_sense(32, seed=9),
        "faults": FaultPlan(seed=9, drop=0.10, duplicate=0.05, jitter=0.25),
        "seed": 9,
    },
    "G@32-partition-rel": _g32_partition_config,
    "E@16-crash": lambda: {
        "protocol": ProtocolE(),
        "topology": complete_without_sense(16, seed=6),
        "faults": FaultPlan(seed=6, crashes={3: 1.0, 11: 2.5}),
        "seed": 6,
        "require_leader": False,
    },
    # Randomized protocols shard cleanly by construction: each node's coin
    # stream is derived from (run seed, node id) alone, so draws are
    # identical regardless of which shard hosts the node.
    "RS@64": lambda: {
        "protocol": RandomizedSampling(),
        "topology": complete_without_sense(64, seed=11),
        "seed": 11,
    },
    "RT@64-unit": lambda: {
        "protocol": RandomizedTradeoff(),
        "topology": complete_without_sense(64, seed=12),
        "delays": worst_case_unit(),
        "seed": 12,
    },
    "RS@32-lossy-rel": lambda: {
        "protocol": ReliableDelivery(RandomizedSampling()),
        "topology": complete_without_sense(32, seed=13),
        "faults": FaultPlan(seed=13, drop=0.10, duplicate=0.05, jitter=0.25),
        "seed": 13,
    },
}

#: The exhaustive digest matrix (fixture equality at two shard counts);
#: the smoke slice runs a subset at shards=2 only.
FULL_MATRIX_CASES = sorted(SHARDABLE_CASES)
SMOKE_CASES = ("C@64", "B@32-unit", "G@64-k8", "E@32-lossy-rel", "RS@64")


def _run_sharded(
    name: str,
    shards: int,
    workers: int | None = 0,
    engine: str | None = None,
):
    config = SHARDABLE_CASES[name]()
    protocol = config.pop("protocol")
    topology = config.pop("topology")
    return run_sharded_election(
        protocol, topology, shards=shards, workers=workers, engine=engine,
        **config,
    )


def _fixture(name: str) -> dict:
    return json.loads(FIXTURE_PATH.read_text())[name]


# ---------------------------------------------------------------------------
# The digest contract (satellite: fixtures at two shard counts + lossy).
# ---------------------------------------------------------------------------


@pytest.mark.shard_smoke
@pytest.mark.parametrize("name", SMOKE_CASES)
def test_sharded_digest_matches_seed_fixture_smoke(name):
    """The CI smoke leg: 2 shards, digest-checked against the fixture."""
    assert fingerprint(_run_sharded(name, shards=2)) == _fixture(name)


@pytest.mark.parametrize("name", FULL_MATRIX_CASES)
@pytest.mark.parametrize("shards", (2, 3))
def test_sharded_digest_matches_seed_fixture(name, shards):
    actual = fingerprint(_run_sharded(name, shards=shards))
    assert actual == _fixture(name), (
        f"{name} at {shards} shards diverged from the serial seed "
        "fixture: the sharded kernel broke the digest contract"
    )


# ---------------------------------------------------------------------------
# Delivery engines.  ``engine=None`` auto-selects the vector engine, so
# every other test in this file already exercises it (numpy decode when
# available); the interp engine and the pure-Python fallback need pins of
# their own.
# ---------------------------------------------------------------------------


@pytest.mark.shard_smoke
@pytest.mark.parametrize("engine", ("interp", "vector"))
def test_both_engines_match_the_seed_fixture(engine):
    """The heaviest fault cell, digest-checked under each engine by name."""
    actual = fingerprint(
        _run_sharded("E@32-lossy-rel", shards=2, engine=engine)
    )
    assert actual == _fixture("E@32-lossy-rel")


@pytest.mark.parametrize("name", ("C@64", "G@64-k8"))
@pytest.mark.parametrize("shards", (2, 3))
def test_interp_engine_digest_matches_seed_fixture(name, shards):
    actual = fingerprint(_run_sharded(name, shards=shards, engine="interp"))
    assert actual == _fixture(name), (
        f"{name} at {shards} shards diverged under engine='interp'"
    )


def test_vector_engine_without_numpy_is_byte_identical(monkeypatch):
    """The pure-Python batch fallback (REPRO_NO_NUMPY / numpy absent)
    must produce the same digest as the numpy decode path."""
    import repro.sim.shard as shard_mod

    monkeypatch.setattr(shard_mod, "_np", None)
    actual = fingerprint(
        _run_sharded("E@32-lossy-rel", shards=2, engine="vector")
    )
    assert actual == _fixture("E@32-lossy-rel")


def test_unknown_engine_is_refused():
    with pytest.raises(ConfigurationError, match="unknown engine"):
        _run_sharded("C@64", shards=2, engine="turbo")


def test_lossy_overlay_case_is_exact_under_sharding():
    """The full fault stack (drop/dup/jitter + retransmission overlay)
    reproduces every overlay counter, not just the election outcome."""
    sharded = fingerprint(_run_sharded("E@32-lossy-rel", shards=3))
    fixture = _fixture("E@32-lossy-rel")
    for key in (
        "messages_dropped", "messages_duplicated", "messages_jittered",
        "retransmissions", "duplicates_suppressed",
    ):
        assert sharded[key] == fixture[key], key


@pytest.mark.parametrize(
    "make_config",
    [
        lambda: (ProtocolC(), complete_with_sense_of_direction(64), {}),
        lambda: (
            ProtocolG(k=8),
            complete_without_sense(64, seed=3),
            {"delays": worst_case_unit(), "seed": 3},
        ),
        lambda: (
            ReliableDelivery(ProtocolE()),
            complete_without_sense(32, seed=9),
            {
                "faults": FaultPlan(
                    seed=9, drop=0.10, duplicate=0.05, jitter=0.25
                ),
                "seed": 9,
            },
        ),
    ],
    ids=["C@64", "G@64-k8", "E@32-lossy-rel"],
)
def test_resharding_never_changes_leader_or_message_counts(make_config):
    """Re-sharding property: 1, 2 and 4 shards agree on every field."""
    prints = []
    for shards in (1, 2, 4):
        protocol, topology, kwargs = make_config()
        prints.append(
            fingerprint(
                run_sharded_election(
                    protocol, topology, shards=shards, workers=0, **kwargs
                )
            )
        )
    assert prints[0] == prints[1] == prints[2]
    serial_protocol, serial_topology, serial_kwargs = make_config()
    serial = fingerprint(
        run_election(serial_protocol, serial_topology, **serial_kwargs)
    )
    assert prints[0] == serial


@pytest.mark.shard_smoke
def test_forked_workers_match_in_process_shards():
    """The fork transport is a pure transport: same digest either way."""
    in_process = fingerprint(_run_sharded("C@64", shards=2, workers=0))
    forked = fingerprint(_run_sharded("C@64", shards=2, workers=2))
    assert in_process == forked == _fixture("C@64")


def _transport_of(name: str, shards: int, workers: int) -> str:
    config = SHARDABLE_CASES[name]()
    protocol = config.pop("protocol")
    topology = config.pop("topology")
    net = ShardedNetwork(
        protocol, topology, shards=shards, workers=workers, **config
    )
    net.run()
    return net.stats["transport"]


@pytest.mark.shard_smoke
def test_shm_transport_matches_pipes_and_fixture(monkeypatch):
    """Fast lanes over shared memory are byte-identical to the pipes.

    Runs the heaviest fault cell (drop/dup/jitter + retransmission
    overlay) so both the packed fast lane and the pickled slow lane cross
    the segments' window parity flips.
    """
    monkeypatch.delenv("REPRO_SHM", raising=False)
    shm = fingerprint(_run_sharded("E@32-lossy-rel", shards=2, workers=2))
    monkeypatch.setenv("REPRO_SHM", "0")
    pipes = fingerprint(_run_sharded("E@32-lossy-rel", shards=2, workers=2))
    assert shm == pipes == _fixture("E@32-lossy-rel")


def test_shm_overflow_batches_ride_the_pipes(monkeypatch):
    """Segment capacity is a perf knob, never a correctness one: with a
    2-record capacity almost every batch overflows to the pipe lane, and
    the digest must not move."""
    monkeypatch.setenv("REPRO_SHM_RECORDS", "2")
    assert (
        fingerprint(_run_sharded("C@64", shards=2, workers=2))
        == _fixture("C@64")
    )


def test_transport_stat_reports_the_exchange_in_use(monkeypatch):
    monkeypatch.delenv("REPRO_SHM", raising=False)
    assert _transport_of("C@64", shards=2, workers=0) == "local"
    assert _transport_of("C@64", shards=2, workers=2) == "shm"
    monkeypatch.setenv("REPRO_SHM", "off")
    assert _transport_of("C@64", shards=2, workers=2) == "pipes"


def test_worker_exceptions_are_relayed_with_their_type():
    with pytest.raises(LivelockError):
        run_sharded_election(
            ProtocolC(),
            complete_with_sense_of_direction(64),
            shards=2,
            workers=2,
            max_events=50,
        )


# ---------------------------------------------------------------------------
# The global livelock budget (satellite: multi-scheduler accounting).
# ---------------------------------------------------------------------------


class TestGlobalBudget:
    def test_budget_is_global_across_shards_not_per_shard(self):
        """A budget the serial kernel exhausts must also trip sharded —
        k shards may not spend k× the serial allowance."""
        with pytest.raises(LivelockError):
            run_election(
                ProtocolC(), complete_with_sense_of_direction(64),
                max_events=100,
            )
        for shards in (2, 4):
            with pytest.raises(LivelockError):
                run_sharded_election(
                    ProtocolC(), complete_with_sense_of_direction(64),
                    shards=shards, workers=0, max_events=100,
                )

    def test_budget_sufficient_for_serial_is_sufficient_sharded(self):
        serial_net_events = 0
        from repro.sim.network import Network

        net = Network(ProtocolC(), complete_with_sense_of_direction(32))
        net.run()
        serial_net_events = net.scheduler.events_processed
        result = run_sharded_election(
            ProtocolC(), complete_with_sense_of_direction(32),
            shards=4, workers=0, max_events=serial_net_events,
        )
        assert result.leader_id is not None

    def test_scheduler_set_max_events_rejects_past_budgets(self):
        scheduler = Scheduler(max_events=10)
        scheduler.schedule_at(1.0, lambda event: None)
        scheduler.run()
        assert scheduler.events_processed == 1
        with pytest.raises(Exception, match="below the 1 events"):
            scheduler.set_max_events(0)
        scheduler.set_max_events(1)
        assert scheduler.max_events == 1

    def test_scheduler_consume_budget_raises_like_run(self):
        scheduler = Scheduler(max_events=3)
        scheduler.consume_budget(3)
        assert scheduler.events_processed == 3
        with pytest.raises(LivelockError, match="event budget of 3"):
            scheduler.consume_budget(1)

    def test_scheduler_advance_clock_is_monotone(self):
        from repro.core.errors import SimulationError

        scheduler = Scheduler()
        scheduler.advance_clock(5.0)
        assert scheduler.now == 5.0
        with pytest.raises(SimulationError, match="backwards"):
            scheduler.advance_clock(4.0)


# ---------------------------------------------------------------------------
# Configuration gating: what the sharded kernel refuses, loudly.
# ---------------------------------------------------------------------------


class TestGating:
    def test_uniform_delay_is_refused(self):
        with pytest.raises(ConfigurationError, match="run RNG"):
            ShardedNetwork(
                ProtocolE(), complete_without_sense(16, seed=0),
                shards=2, delays=UniformDelay(0.1, 1.0),
            )

    def test_undeclared_uniform_delay_refusal_message_is_exact(self):
        """The refusal must say *why* and name every way out; callers are
        pointed at the refusal text by docs/matrix.md, so it is pinned
        verbatim."""
        with pytest.raises(ConfigurationError) as exc:
            ShardedNetwork(
                ProtocolE(), complete_without_sense(16, seed=0),
                shards=2, delays=UniformDelay(0.1, 1.0),
            )
        assert str(exc.value) == (
            "UniformDelay consumes the shared run RNG; sharded execution "
            "cannot reproduce a global draw order (use ConstantDelay, a "
            "HookDelay with min_latency, or UniformDelay(min_latency=...) "
            "for per-link streams)"
        )

    def test_uniform_delay_with_declared_bound_is_accepted(self):
        result = run_sharded_election(
            ProtocolE(), complete_without_sense(16, seed=0),
            shards=2, workers=0,
            delays=UniformDelay(0.1, 1.0, min_latency=0.1),
        )
        assert result.leader_id is not None

    @pytest.mark.parametrize("shards", (2, 3))
    def test_uniform_delay_streams_match_serial_exactly(self, shards):
        """Per-link streams draw in per-link FIFO order, which the digest
        contract fixes — so serial and sharded runs agree on every delay."""
        def make():
            return (
                ProtocolE(),
                complete_without_sense(32, seed=5),
                UniformDelay(0.05, 1.0, min_latency=0.05, stream_seed=5),
            )

        protocol, topology, delays = make()
        serial = fingerprint(
            run_election(protocol, topology, delays=delays, seed=5)
        )
        protocol, topology, delays = make()
        sharded = fingerprint(
            run_sharded_election(
                protocol, topology, shards=shards, workers=0,
                delays=delays, seed=5,
            )
        )
        assert serial == sharded

    def test_uniform_delay_min_latency_must_not_exceed_low(self):
        with pytest.raises(ConfigurationError, match="min_latency"):
            UniformDelay(0.1, 1.0, min_latency=0.2)
        with pytest.raises(ConfigurationError, match="min_latency"):
            UniformDelay(0.1, 1.0, min_latency=0.0)

    def test_hook_delay_without_min_latency_is_refused(self):
        with pytest.raises(ConfigurationError, match="min_latency"):
            ShardedNetwork(
                ProtocolE(), complete_without_sense(16, seed=0),
                shards=2, delays=HookDelay(lambda *a: 0.5),
            )

    def test_hook_delay_with_declared_bound_is_accepted(self):
        result = run_sharded_election(
            ProtocolE(), complete_without_sense(16, seed=0),
            shards=2, workers=0,
            delays=HookDelay(lambda *a: 0.5, min_latency=0.5),
        )
        assert result.leader_id is not None

    def test_hook_delay_rejects_non_positive_bound_at_construction(self):
        with pytest.raises(ConfigurationError, match="positive"):
            HookDelay(lambda *a: 0.5, min_latency=0.0)

    def test_shard_count_must_be_in_range(self):
        topology = complete_without_sense(16, seed=0)
        for bad in (0, -1, 17):
            with pytest.raises(ConfigurationError, match="shards"):
                ShardedNetwork(ProtocolE(), topology, shards=bad)

    def test_lookahead_is_the_delay_models_min_latency(self):
        network = ShardedNetwork(
            ProtocolC(), complete_with_sense_of_direction(32),
            shards=2, delays=ConstantDelay(0.25),
        )
        assert network.lookahead == 0.25

    def test_a_sharded_network_runs_once(self):
        from repro.core.errors import SimulationError

        network = ShardedNetwork(
            ProtocolC(), complete_with_sense_of_direction(32),
            shards=2, workers=0,
        )
        network.run()
        with pytest.raises(SimulationError, match="once"):
            network.run()


# ---------------------------------------------------------------------------
# The packed-array codec.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Nudge(Message):
    """A field-less message: packs as an empty payload (tagword 0)."""


@dataclass(frozen=True, slots=True)
class _Census(Message):
    hops: int
    tally: int


@dataclass(frozen=True, slots=True)
class _Blob(Message):
    """A tuple field keeps the class registered but never packable."""

    hops: tuple


class _MixedLaneNode(Node):
    """Chains through port 0, alternating fast- and slow-lane messages.

    Every third hop the chained :class:`_Census` carries an over-limit
    tally (``2**62``), pushing a *registered, normally-fast* class onto
    the slow lane; every fourth hop adds an unpackable :class:`_Blob`;
    every remaining hop adds a field-less :class:`_Nudge`.  One window
    therefore mixes fast records, empty-payload records, and both kinds
    of slow records on the same links.
    """

    _BIG = 1 << 62

    def on_wake(self, spontaneous):
        if spontaneous:
            self.ctx.send(0, _Census(1, 0))

    def on_message(self, port, message):
        if not isinstance(message, _Census):
            return
        h = message.hops
        if h >= 2 * self.ctx.n:
            self.become_leader()
            return
        if h % 4 == 0:
            self.ctx.send(0, _Blob((h,)))
        elif h % 3 != 0:
            self.ctx.send(0, _Nudge())
        tally = self._BIG if h % 3 == 0 else h
        self.ctx.send(0, _Census(h + 1, tally))


class _MixedLaneProtocol(ElectionProtocol):
    name = "mixed-lane-test"

    def create_node(self, ctx):
        return _MixedLaneNode(ctx)


class TestMessageCodec:
    def test_flat_messages_round_trip(self):
        from repro.protocols.sense.protocol_c import LatticeCapture

        codec = MessageCodec()
        message = LatticeCapture(rank=41, cand=3)
        packed = codec.pack(message)
        assert packed is not None
        type_id, tags, ints = packed
        assert codec.unpack(type_id, tags, tuple(ints)) == message

    def test_bool_and_none_fields_ride_the_tagword(self):
        import dataclasses

        from repro.core.messages import Message

        codec = MessageCodec()
        flat = None
        for cls in codec._classes:
            values = []
            for f in dataclasses.fields(cls):
                values.append(True if f.type == "bool" else 7)
            try:
                candidate = cls(*values)
            except Exception:
                continue
            if codec.pack(candidate) is not None:
                flat = candidate
                break
        assert flat is not None, "no packable message type found"
        type_id, tags, ints = codec.pack(flat)
        assert codec.unpack(type_id, tags, tuple(ints)) == flat

    def test_nested_messages_take_the_slow_lane(self):
        from repro.core.reliable import Packet
        from repro.protocols.sense.protocol_c import LatticeCapture

        codec = MessageCodec()
        packet = Packet(seq=1, payload=LatticeCapture(rank=3, cand=1))
        assert codec.pack(packet) is None

    def test_registry_is_deterministic_across_instances(self):
        first = MessageCodec()
        second = MessageCodec()
        assert [c.__qualname__ for c in first._classes] == [
            c.__qualname__ for c in second._classes
        ]

    def test_unpack_memoises_identical_records(self):
        from repro.protocols.sense.protocol_c import LatticeCapture

        codec = MessageCodec()
        type_id, tags, ints = codec.pack(LatticeCapture(rank=5, cand=2))
        once = codec.unpack(type_id, tags, tuple(ints))
        again = codec.unpack(type_id, tags, tuple(ints))
        assert once is again

    def test_over_limit_ints_take_the_slow_lane(self):
        """The packed lane carries int64s with headroom: |v| >= 2**62
        falls back to object relay, one short of the limit still packs."""
        from repro.protocols.sense.protocol_c import LatticeCapture

        codec = MessageCodec()
        limit = 1 << 62
        assert codec.pack(LatticeCapture(rank=limit, cand=0)) is None
        assert codec.pack(LatticeCapture(rank=-limit, cand=0)) is None
        for edge in (limit - 1, 1 - limit):
            packed = codec.pack(LatticeCapture(rank=edge, cand=0))
            assert packed is not None
            type_id, tags, ints = packed
            rebuilt = codec.unpack(type_id, tags, tuple(ints))
            assert rebuilt == LatticeCapture(rank=edge, cand=0)

    def test_empty_payload_messages_round_trip(self):
        codec = MessageCodec()
        packed = codec.pack(_Nudge())
        assert packed is not None
        type_id, tags, ints = packed
        assert tags == 0 and ints == []
        assert codec.unpack(type_id, tags, ()) == _Nudge()

    @pytest.mark.parametrize("shards", (2, 3))
    def test_mixed_fast_and_slow_windows_round_trip(self, shards):
        """End-to-end lane mixing: over-limit ints, unpackable classes and
        empty payloads interleave with fast records inside single windows,
        and the sharded digest still equals the serial one."""
        serial = fingerprint(
            run_election(
                _MixedLaneProtocol(),
                complete_without_sense(12, seed=4),
                wakeup={0: 0.0},
                seed=4,
                require_leader=False,
            )
        )
        sharded = fingerprint(
            run_sharded_election(
                _MixedLaneProtocol(),
                complete_without_sense(12, seed=4),
                shards=shards,
                workers=0,
                wakeup={0: 0.0},
                seed=4,
                require_leader=False,
            )
        )
        assert serial == sharded

    def test_mixed_lane_windows_round_trip_over_forked_shm_workers(self):
        """Same mixing, but across the fork transport: slow records ride
        the pipes while fast ones cross the shared segments."""
        in_process = fingerprint(
            run_sharded_election(
                _MixedLaneProtocol(),
                complete_without_sense(12, seed=4),
                shards=2, workers=0, wakeup={0: 0.0}, seed=4,
                require_leader=False,
            )
        )
        forked = fingerprint(
            run_sharded_election(
                _MixedLaneProtocol(),
                complete_without_sense(12, seed=4),
                shards=2, workers=2, wakeup={0: 0.0}, seed=4,
                require_leader=False,
            )
        )
        assert in_process == forked


# ---------------------------------------------------------------------------
# Odd shard geometries and runtime stats.
# ---------------------------------------------------------------------------


class TestGeometryAndStats:
    def test_shards_equal_to_n_still_agree_with_serial(self):
        topology = complete_without_sense(8, seed=0)
        sharded = fingerprint(
            run_sharded_election(
                ProtocolE(), topology, shards=8, workers=0, seed=0
            )
        )
        serial = fingerprint(
            run_election(ProtocolE(), complete_without_sense(8, seed=0), seed=0)
        )
        assert sharded == serial

    def test_uneven_shard_sizes_agree_with_serial(self):
        """n=50 over 7 shards: ceil-boundary ranges, none empty."""
        topology = complete_without_sense(50, seed=2)
        sharded = fingerprint(
            run_sharded_election(
                ProtocolE(), topology, shards=7, workers=0, seed=2
            )
        )
        serial = fingerprint(
            run_election(
                ProtocolE(), complete_without_sense(50, seed=2), seed=2
            )
        )
        assert sharded == serial

    def test_run_stats_account_every_event(self):
        from repro.sim.network import Network

        net = Network(ProtocolC(), complete_with_sense_of_direction(64))
        net.run()
        sharded = ShardedNetwork(
            ProtocolC(), complete_with_sense_of_direction(64),
            shards=4, workers=0,
        )
        sharded.run()
        stats = sharded.stats
        assert stats["events_total"] == net.scheduler.events_processed
        assert sum(stats["events_per_shard"]) == stats["events_total"]
        assert stats["shards"] == 4
        assert stats["windows"] > 0
        assert sharded.aggregate_events_per_sec > 0

    def test_snapshots_can_be_skipped_for_scale_runs(self):
        result = run_sharded_election(
            ProtocolC(), complete_with_sense_of_direction(32),
            shards=2, workers=0, collect_snapshots=False,
        )
        assert result.leader_id is not None
        assert result.node_snapshots == ()


# ---------------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------------


@pytest.mark.shard_smoke
def test_cli_run_with_shards_matches_serial_summary(capsys):
    from repro.__main__ import main

    assert main(["run", "--protocol", "C", "--n", "64"]) == 0
    serial_out = capsys.readouterr().out
    assert (
        main(
            ["run", "--protocol", "C", "--n", "64", "--shards", "2",
             "--shard-workers", "0"]
        )
        == 0
    )
    sharded_out = capsys.readouterr().out
    assert sharded_out == serial_out
