"""Unit tests for the event queue and scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import LivelockError, SimulationError
from repro.sim.events import EventQueue
from repro.sim.scheduler import Scheduler


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, lambda e: order.append("c"))
        queue.push(1.0, lambda e: order.append("a"))
        queue.push(2.0, lambda e: order.append("b"))
        while queue:
            queue.pop().action(None)
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda e: None)
        second = queue.push(1.0, lambda e: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_tiebreak_overrides_insertion_order(self):
        queue = EventQueue()
        late = queue.push(1.0, lambda e: None, tiebreak=1)
        early = queue.push(1.0, lambda e: None, tiebreak=-1)
        assert queue.pop() is early
        assert queue.pop() is late

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1,
                    max_size=50))
    def test_any_schedule_pops_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, lambda e: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)


class TestScheduler:
    def test_clock_advances_with_events(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(2.5, lambda e: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]
        assert scheduler.now == 2.5

    def test_actions_can_schedule_more_events(self):
        scheduler = Scheduler()
        seen = []

        def first(event):
            seen.append("first")
            scheduler.schedule_in(1.0, lambda e: seen.append("second"))

        scheduler.schedule_at(1.0, first)
        scheduler.run()
        assert seen == ["first", "second"]
        assert scheduler.now == 2.0

    def test_scheduling_into_the_past_is_rejected(self):
        scheduler = Scheduler()
        scheduler.schedule_at(5.0, lambda e: None)
        scheduler.run()
        with pytest.raises(SimulationError, match="past"):
            scheduler.schedule_at(1.0, lambda e: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().schedule_in(-0.1, lambda e: None)

    def test_event_budget_turns_livelock_into_an_error(self):
        scheduler = Scheduler(max_events=100)

        def forever(event):
            scheduler.schedule_in(1.0, forever)

        scheduler.schedule_at(0.0, forever)
        with pytest.raises(LivelockError):
            scheduler.run()

    def test_run_until_stops_before_later_events(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule_at(1.0, lambda e: seen.append(1))
        scheduler.schedule_at(10.0, lambda e: seen.append(10))
        scheduler.run(until=5.0)
        assert seen == [1]
        assert scheduler.pending == 1

    def test_run_until_advances_clock_to_the_horizon(self):
        # Regression: run(until=...) used to leave ``now`` at the last
        # *processed* event, so a subsequent schedule_at() inside the
        # already-simulated window was silently accepted.
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, lambda e: None)
        scheduler.schedule_at(10.0, lambda e: None)
        scheduler.run(until=5.0)
        assert scheduler.now == 5.0
        with pytest.raises(SimulationError, match="past"):
            scheduler.schedule_at(3.0, lambda e: None)
        scheduler.run(until=20.0)
        assert scheduler.now == 20.0
        assert scheduler.pending == 0

    def test_run_until_with_drained_queue_still_reaches_the_horizon(self):
        scheduler = Scheduler()
        scheduler.schedule_at(1.0, lambda e: None)
        scheduler.run(until=5.0)
        assert scheduler.now == 5.0

    def test_run_until_never_moves_the_clock_backwards(self):
        scheduler = Scheduler()
        scheduler.schedule_at(7.0, lambda e: None)
        scheduler.run()
        assert scheduler.now == 7.0
        scheduler.run(until=5.0)  # horizon already in the past: no-op
        assert scheduler.now == 7.0

    def test_depth_is_carried_on_events(self):
        scheduler = Scheduler()
        depths = []
        scheduler.schedule_at(1.0, lambda e: depths.append(e.depth), depth=7)
        scheduler.run()
        assert depths == [7]
