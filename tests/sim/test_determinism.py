"""Determinism suite: runs are pure functions of their configuration.

Three layers of guarantee, each backed by an assertion here:

1. **Across kernel rewrites** — every case in
   :mod:`tests.sim.determinism_cases` must reproduce the fingerprint the
   *seed* kernel recorded in ``tests/fixtures/determinism.json``.  A perf
   refactor of the event loop, the topology tables, or the delivery path
   that changes any observable field fails these tests.
2. **Across repeated runs** — running the same case twice in one process
   yields byte-identical fingerprints (no hidden global state, no
   dict-order or id()-order leakage into results).
3. **Across serial/parallel sweep execution** — ``run_sweep`` returns the
   same results (in the same order) whether it runs the tasks in-process
   or fans them over a fork pool; the matrix runner's aggregate report
   digest inherits the same guarantee.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.parallel import run_sweep
from tests.sim.determinism_cases import (
    CASES,
    FIXTURE_PATH,
    assert_digest_stable,
    fingerprint,
    fingerprint_bytes,
)


def _load_fixtures() -> dict:
    return json.loads(FIXTURE_PATH.read_text())


def test_fixture_file_covers_every_case():
    assert set(_load_fixtures()) == set(CASES)


@pytest.mark.parametrize("name", sorted(CASES))
def test_case_matches_seed_kernel_fixture(name):
    expected = _load_fixtures()[name]
    actual = fingerprint(CASES[name]())
    assert actual == expected, (
        f"{name} diverged from the seed kernel; if the change is intended, "
        "regenerate with: PYTHONPATH=src python -m tests.sim.determinism_cases --write"
    )


@pytest.mark.parametrize("name", ["C@64", "E@64-uniform", "G@64-k8"])
def test_repeated_runs_are_byte_identical(name):
    run = CASES[name]
    assert fingerprint_bytes(run()) == fingerprint_bytes(run())


def test_serial_and_parallel_sweeps_agree():
    tasks = [CASES[name] for name in sorted(CASES)]
    assert_digest_stable(
        lambda parallel: [
            fingerprint_bytes(r)
            for r in run_sweep(tasks, parallel=parallel, processes=2)
        ],
        label="sweep fingerprints",
    )


def test_matrix_runner_digest_is_execution_mode_independent():
    """The matrix aggregate report digests identically serial vs forked."""
    from repro.matrix import parse_toml, run_matrix

    specs = parse_toml(
        """
        [[spec]]
        tag = "det"
        protocols = ["C", "E", "G"]
        scenarios = ["worst_case", "lossy"]
        ns = [8, 16]
        """
    )
    digest = assert_digest_stable(
        lambda parallel: run_matrix(
            specs, parallel=parallel, processes=2
        ).digest(),
        label="matrix report digest",
    )
    assert len(digest) == 64  # sha256 hex


def test_run_sweep_preserves_task_order():
    tasks = [lambda i=i: i * i for i in range(10)]
    assert run_sweep(tasks, parallel=False) == [i * i for i in range(10)]
    assert run_sweep(tasks, parallel=True, processes=3) == [
        i * i for i in range(10)
    ]


def test_run_sweep_parallel_off_via_environment(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "0")
    tasks = [lambda i=i: i for i in range(6)]
    assert run_sweep(tasks) == list(range(6))
