"""FIFO link tests — Section 2's 'arrive in the order sent' guarantee."""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.core.messages import Wakeup
from repro.sim.delays import ConstantDelay, HookDelay, UniformDelay
from repro.sim.link import Channel, ChannelTable


class TestChannel:
    def test_constant_delay_arrivals(self):
        channel = Channel(0, 1)
        rng = random.Random(0)
        t1 = channel.arrival_time(Wakeup(), 0.0, ConstantDelay(1.0), rng)
        t2 = channel.arrival_time(Wakeup(), 0.5, ConstantDelay(1.0), rng)
        assert (t1, t2) == (1.0, 1.5)

    def test_fifo_clamps_reordering_delays(self):
        """A later message with a shorter draw must not overtake."""
        channel = Channel(0, 1)
        rng = random.Random(0)
        draws = iter([1.0, 0.1])
        model = HookDelay(lambda *a: next(draws))
        t1 = channel.arrival_time(Wakeup(), 0.0, model, rng)
        t2 = channel.arrival_time(Wakeup(), 0.05, model, rng)
        assert t1 == 1.0
        assert t2 >= t1  # clamped to FIFO despite the 0.1 draw

    def test_gap_spaces_consecutive_deliveries(self):
        channel = Channel(0, 1)
        rng = random.Random(0)
        model = HookDelay(lambda *a: 0.05, gap_fn=lambda *a: 1.0)
        times = [
            channel.arrival_time(Wakeup(), 0.0, model, rng) for _ in range(5)
        ]
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(abs(d - 1.0) < 1e-9 for d in diffs)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10**6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_fifo_holds_for_any_send_times_and_random_delays(self, sends):
        """Property: per-channel arrival order equals send order."""
        channel = Channel(0, 1)
        rng = random.Random(7)
        model = UniformDelay(0.01, 1.0)
        send_times = sorted(t for t, _ in sends)
        arrivals = [
            channel.arrival_time(Wakeup(), t, model, rng) for t in send_times
        ]
        assert arrivals == sorted(arrivals)
        assert all(a >= t for a, t in zip(arrivals, send_times))


class TestChannelTable:
    def test_channels_are_lazy_and_directed(self):
        table = ChannelTable()
        forward = table.channel(0, 1)
        backward = table.channel(1, 0)
        assert forward is not backward
        assert table.channel(0, 1) is forward

    def test_touched_counts_only_used_channels(self):
        table = ChannelTable()
        table.channel(0, 1)
        assert table.touched == 0
        table.channel(0, 1).arrival_time(
            Wakeup(), 0.0, ConstantDelay(1.0), random.Random(0)
        )
        assert table.touched == 1
