"""Delay model validation tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.core.messages import Wakeup
from repro.sim.delays import ConstantDelay, HookDelay, UniformDelay


class TestConstantDelay:
    def test_default_is_the_unit_worst_case(self):
        assert ConstantDelay().delay == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_delays_outside_unit_interval_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ConstantDelay(bad)


class TestUniformDelay:
    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(0.5, 0.1)
        with pytest.raises(ConfigurationError):
            UniformDelay(0.0, 1.0)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_draws_stay_in_bounds(self, seed):
        model = UniformDelay(0.2, 0.8)
        rng = random.Random(seed)
        value = model.latency(0, 1, Wakeup(), 0.0, rng)
        assert 0.2 <= value <= 0.8


class TestHookDelay:
    def test_latency_hook_is_consulted(self):
        model = HookDelay(lambda s, r, m, t: 0.25)
        assert model.latency(0, 1, Wakeup(), 0.0, random.Random(0)) == 0.25

    def test_latency_hook_outside_model_rejected(self):
        model = HookDelay(lambda s, r, m, t: 2.0)
        with pytest.raises(ConfigurationError):
            model.latency(0, 1, Wakeup(), 0.0, random.Random(0))

    def test_gap_defaults_to_zero(self):
        model = HookDelay(lambda s, r, m, t: 0.5)
        assert model.gap(0, 1, Wakeup(), 0.0, random.Random(0)) == 0.0

    def test_gap_hook_validated(self):
        model = HookDelay(lambda *a: 0.5, gap_fn=lambda *a: 1.5)
        with pytest.raises(ConfigurationError):
            model.gap(0, 1, Wakeup(), 0.0, random.Random(0))

    def test_hooks_see_sender_receiver_and_time(self):
        seen = []

        def latency(sender, receiver, message, send_time):
            seen.append((sender, receiver, send_time))
            return 0.5

        HookDelay(latency).latency(3, 9, Wakeup(), 2.5, random.Random(0))
        assert seen == [(3, 9, 2.5)]
