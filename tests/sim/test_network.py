"""Integration tests for the network runtime itself.

These pin the model semantics every protocol relies on: wake-by-message,
base-node bookkeeping, failure injection, single-leader enforcement, and
metric accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.errors import ProtocolViolation, SimulationError
from repro.core.messages import Message
from repro.core.node import Node
from repro.core.protocol import ElectionProtocol
from repro.sim.network import Network, run_election
from repro.topology.complete import complete_without_sense
from repro.protocols.nosense.protocol_d import ProtocolD


@dataclass(frozen=True, slots=True)
class Ping(Message):
    hops: int


class PingNode(Node):
    """Wakes neighbours in a chain through port 0, then declares."""

    def on_wake(self, spontaneous):
        if spontaneous:
            self.ctx.send(0, Ping(1))

    def on_message(self, port, message):
        if message.hops < self.ctx.n:
            self.ctx.send(0, Ping(message.hops + 1))
        else:
            self.become_leader()


class PingProtocol(ElectionProtocol):
    name = "ping-test"

    def create_node(self, ctx):
        return PingNode(ctx)


class GreedyLeaderNode(Node):
    """Every base node declares itself leader immediately — unsafe."""

    def on_wake(self, spontaneous):
        if spontaneous:
            self.become_leader()

    def on_message(self, port, message):
        pass


class GreedyProtocol(ElectionProtocol):
    name = "greedy-test"

    def create_node(self, ctx):
        return GreedyLeaderNode(ctx)


class TestWakeSemantics:
    def test_message_wakes_a_passive_node_as_non_base(self):
        topo = complete_without_sense(4, seed=0)
        result = run_election(
            PingProtocol(), topo, wakeup={0: 0.0}, require_leader=False
        )
        awake = [s for s in result.node_snapshots if s["awake"]]
        assert len(awake) >= 2
        assert result.base_positions == (0,)

    def test_scheduled_wake_after_message_does_not_create_a_base_node(self):
        topo = complete_without_sense(4, seed=0)
        victim = topo.neighbor(0, 0)
        # victim is scheduled to wake spontaneously long after 0's ping hits.
        result = run_election(
            PingProtocol(), topo, wakeup={0: 0.0, victim: 50.0},
            require_leader=False,
        )
        assert victim not in result.base_positions

    def test_empty_wake_schedule_is_rejected(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="no live base node"):
            run_election(PingProtocol(), topo, wakeup={})


class TestSafetyEnforcement:
    def test_second_leader_declaration_raises_at_the_violation_instant(self):
        topo = complete_without_sense(3, seed=0)
        with pytest.raises(ProtocolViolation, match="already had"):
            run_election(GreedyProtocol(), topo)

    def test_single_greedy_base_is_fine(self):
        topo = complete_without_sense(3, seed=0)
        result = run_election(GreedyProtocol(), topo, wakeup={1: 0.0})
        assert result.leader_position == 1


class TestFailureInjection:
    def test_failed_nodes_drop_messages_and_never_wake(self):
        topo = complete_without_sense(4, seed=0)
        victim = topo.neighbor(0, 0)
        result = run_election(
            PingProtocol(), topo, wakeup={0: 0.0},
            failed_positions={victim}, require_leader=False,
        )
        snap = result.node_snapshots[victim]
        assert not snap["awake"]

    def test_failed_base_positions_are_dropped_from_the_schedule(self):
        from repro.protocols.nosense.fault_tolerant import FaultTolerantElection

        topo = complete_without_sense(5, seed=0)
        result = run_election(
            FaultTolerantElection(max_failures=1), topo, failed_positions={0},
        )
        assert 0 not in result.base_positions
        assert result.leader_position != 0

    def test_protocol_d_cannot_survive_failures(self):
        """D waits for grants from everyone, so a dead node stalls it —
        the contrast that motivates the fault-tolerant variant."""
        topo = complete_without_sense(4, seed=0)
        result = run_election(
            ProtocolD(), topo, failed_positions={0}, require_leader=False
        )
        assert result.leader_id is None

    def test_out_of_range_failure_rejected(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="out of range"):
            Network(ProtocolD(), topo, failed_positions={9})


class TestMetrics:
    def test_message_counts_and_types(self):
        topo = complete_without_sense(8, seed=1)
        result = run_election(ProtocolD(), topo)
        assert result.messages_total == sum(result.messages_by_type.values())
        assert result.messages_by_type["BroadcastElect"] == 8 * 7
        assert result.bits_total > 0

    def test_election_time_measured_from_first_wake(self):
        topo = complete_without_sense(4, seed=0)
        result = run_election(ProtocolD(), topo, wakeup={0: 5.0, 1: 6.0})
        assert result.first_wake_time == 5.0
        assert result.election_time == result.elected_at - 5.0

    def test_causal_depth_tracks_message_chains(self):
        topo = complete_without_sense(4, seed=0)
        result = run_election(ProtocolD(), topo)
        # D is one round trip: elect (depth 1) + accept (depth 2).
        assert result.election_depth == 2

    def test_network_can_only_run_once(self):
        topo = complete_without_sense(4, seed=0)
        network = Network(ProtocolD(), topo)
        network.run()
        with pytest.raises(SimulationError, match="only run once"):
            network.run()

    def test_invalid_port_is_a_simulation_error(self):
        class BadNode(Node):
            def on_wake(self, spontaneous):
                self.ctx.send(99, Ping(1))

            def on_message(self, port, message):
                pass

        class BadProtocol(ElectionProtocol):
            name = "bad-port-test"

            def create_node(self, ctx):
                return BadNode(ctx)

        topo = complete_without_sense(4, seed=0)
        with pytest.raises(SimulationError, match="invalid port"):
            run_election(BadProtocol(), topo, require_leader=False)


class TestRunElectionSignature:
    """run_election takes explicit keywords: option typos must not pass
    silently (the old **kwargs forwarding swallowed e.g. ``seeds=3``)."""

    def test_misspelled_option_raises_type_error(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(TypeError, match="seeds"):
            run_election(ProtocolD(), topo, seeds=3)

    def test_options_are_keyword_only(self):
        topo = complete_without_sense(4, seed=0)
        with pytest.raises(TypeError):
            run_election(ProtocolD(), topo, None, None)  # positional options

    def test_explicit_keywords_accepted(self):
        topo = complete_without_sense(4, seed=0)
        result = run_election(ProtocolD(), topo, seed=3, trace=False)
        assert result.leader_id is not None
