"""Unit tests for metrics accounting and trace collection."""

from __future__ import annotations

from repro.sim.metrics import MetricsCollector
from repro.sim.tracing import TraceEvent, Tracer


class TestMetricsCollector:
    def test_send_accounting(self):
        metrics = MetricsCollector()
        metrics.on_send("Capture", 20)
        metrics.on_send("Capture", 20)
        metrics.on_send("Elect", 12)
        assert metrics.messages_total == 3
        assert metrics.bits_total == 52
        assert metrics.messages_by_type == {"Capture": 2, "Elect": 1}

    def test_depth_tracks_the_maximum(self):
        metrics = MetricsCollector()
        for depth in (1, 5, 3):
            metrics.on_delivery_depth(depth)
        assert metrics.max_depth == 5

    def test_wake_window(self):
        metrics = MetricsCollector()
        for t in (3.0, 1.0, 2.0):
            metrics.on_wake(t)
        assert metrics.first_wake_time == 1.0
        assert metrics.last_wake_time == 3.0

    def test_election_time_relative_to_first_wake(self):
        metrics = MetricsCollector()
        metrics.on_wake(2.0)
        metrics.on_leader(10.0, depth=8)
        assert metrics.election_time == 8.0
        assert metrics.leader_declared_depth == 8

    def test_unfinished_election_is_infinite(self):
        metrics = MetricsCollector()
        metrics.on_wake(0.0)
        assert metrics.election_time == float("inf")


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send", 3, to=4)
        assert len(tracer) == 0

    def test_enabled_tracer_records_sorted_detail(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "send", 3, to=4, message="X")
        event = tracer.events[0]
        assert event == TraceEvent(
            1.0, "send", 3, (("message", "X"), ("to", 4))
        )
        assert event.get("to") == 4
        assert event.get("missing", "default") == "default"

    def test_of_kind_filters(self):
        tracer = Tracer(enabled=True)
        tracer.record(1.0, "send", 0)
        tracer.record(2.0, "wake", 1)
        tracer.record(3.0, "send", 2)
        assert [e.node for e in tracer.of_kind("send")] == [0, 2]
