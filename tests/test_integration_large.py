"""Large-scale integration tests.

One order of magnitude above the unit tests: every protocol at N in the
hundreds, full invariant audits on traced runs, and cross-protocol
agreement checks.  These are the tests that catch quadratic blow-ups and
state-machine leaks that small-N tests cannot see.
"""

from __future__ import annotations

import pytest

from repro.analysis.invariants import audit
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.hirschberg_sinclair import HirschbergSinclair
from repro.protocols.sense.lmw86 import LMW86
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import UniformDelay
from repro.sim.network import Network, run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

N_LARGE = 512

SENSE = [ProtocolA, ProtocolAPrime, ProtocolB, ProtocolC, LMW86,
         ChangRoberts, HirschbergSinclair]
NOSENSE = [ProtocolD, ProtocolE, lambda: ProtocolF(k=16),
           lambda: ProtocolG(k=16), ProtocolR,
           lambda: FaultTolerantElection(max_failures=32)]


@pytest.mark.parametrize("factory", SENSE, ids=lambda f: f().name)
def test_sense_protocols_at_512(factory):
    result = run_election(factory(), complete_with_sense_of_direction(N_LARGE))
    result.verify()
    assert result.leader_id == N_LARGE - 1  # simultaneous unit-delay runs


@pytest.mark.parametrize(
    "factory", NOSENSE,
    ids=["D", "E", "F", "G", "R", "FT"],
)
def test_unlabeled_protocols_at_512(factory):
    result = run_election(factory(), complete_without_sense(N_LARGE, seed=1))
    result.verify()


@pytest.mark.parametrize(
    "factory,sense",
    [(ProtocolC, True), (lambda: ProtocolG(k=8), False), (ProtocolR, False)],
    ids=["C", "G", "R"],
)
def test_full_invariant_audit_at_scale(factory, sense):
    n = 128
    topology = (
        complete_with_sense_of_direction(n)
        if sense
        else complete_without_sense(n, seed=2)
    )
    network = Network(factory(), topology, trace=True, seed=2)
    result = network.run()
    audit(result)


def test_all_sense_protocols_agree_on_the_winner():
    """Under simultaneous wake-up and unit delays every protocol elects the
    maximum identity — they disagree only on cost, never on outcome."""
    n = 128
    leaders = {
        factory().name: run_election(
            factory(), complete_with_sense_of_direction(n)
        ).leader_id
        for factory in SENSE
    }
    assert set(leaders.values()) == {n - 1}, leaders


def test_random_delay_runs_agree_within_a_protocol():
    """Same environment, same seed, across protocol *instances*: the whole
    pipeline (wiring, delays, wake-ups) is deterministic end to end."""
    n = 96
    a = run_election(
        ProtocolG(k=8), complete_without_sense(n, seed=11),
        delays=UniformDelay(0.05, 1.0), seed=11,
    )
    b = run_election(
        ProtocolG(k=8), complete_without_sense(n, seed=11),
        delays=UniformDelay(0.05, 1.0), seed=11,
    )
    assert (a.leader_id, a.messages_total, a.elected_at) == (
        b.leader_id, b.messages_total, b.elected_at
    )


def test_event_volume_stays_proportional_to_messages():
    """The kernel processes O(messages) events — no hidden quadratic pass."""
    n = 256
    network = Network(ProtocolC(), complete_with_sense_of_direction(n))
    result = network.run()
    # wake events + one delivery per message
    assert network.scheduler.events_processed <= result.messages_total + n + 8
