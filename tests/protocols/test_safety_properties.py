"""Property-based safety/liveness/validity tests across every protocol.

These are the paper's three election properties, checked under
hypothesis-generated environments: network size, hidden wiring, random
delays, and wake-up subsets/windows.  ``ElectionResult.verify`` raises on
any violation (no leader, two leaders, passive leader), and the runtime
raises at the instant of a double declaration, so a counterexample comes
with a deterministic seed to replay.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.adversary import wakeup
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.lmw86 import LMW86
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import ConstantDelay, UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

environments = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10**6),
        "delay_low": st.floats(min_value=0.01, max_value=0.5),
        "base_fraction": st.floats(min_value=0.05, max_value=1.0),
        "wake_window": st.floats(min_value=0.0, max_value=10.0),
    }
)


def run_with_environment(protocol, topology, env):
    count = max(1, round(env["base_fraction"] * topology.n))
    return run_election(
        protocol,
        topology,
        delays=UniformDelay(env["delay_low"], 1.0),
        wakeup=wakeup.random_subset(
            count, window=env["wake_window"], seed_offset=env["seed"]
        ),
        seed=env["seed"],
    )


class TestSenseOfDirectionProtocols:
    @COMMON_SETTINGS
    @given(n=st.integers(min_value=2, max_value=48), env=environments)
    def test_protocol_a_family(self, n, env):
        for protocol in (ProtocolA(), ProtocolAPrime(), LMW86()):
            result = run_with_environment(
                protocol, complete_with_sense_of_direction(n), env
            )
            result.verify()  # liveness + safety + validity

    @COMMON_SETTINGS
    @given(r=st.integers(min_value=1, max_value=6), env=environments)
    def test_protocols_b_and_c(self, r, env):
        n = 2**r
        for protocol in (ProtocolB(), ProtocolC()):
            result = run_with_environment(
                protocol, complete_with_sense_of_direction(n), env
            )
            result.verify()

    @COMMON_SETTINGS
    @given(n=st.integers(min_value=2, max_value=48), env=environments)
    def test_chang_roberts(self, n, env):
        result = run_with_environment(
            ChangRoberts(), complete_with_sense_of_direction(n), env
        )
        result.verify()
        # CR specifically: the winner is the largest base identity.
        assert result.leader_id == max(
            result.node_snapshots[p]["id"] for p in result.base_positions
        )


class TestUnlabeledProtocols:
    @COMMON_SETTINGS
    @given(n=st.integers(min_value=2, max_value=40), env=environments)
    def test_protocol_d(self, n, env):
        result = run_with_environment(
            ProtocolD(), complete_without_sense(n, seed=env["seed"]), env
        )
        result.verify()
        assert result.leader_position == max(result.base_positions)

    @COMMON_SETTINGS
    @given(n=st.integers(min_value=2, max_value=32), env=environments)
    def test_sequential_capture_family(self, n, env):
        for protocol in (AfekGafni(), ProtocolE()):
            result = run_with_environment(
                protocol, complete_without_sense(n, seed=env["seed"]), env
            )
            result.verify()

    @COMMON_SETTINGS
    @given(
        n=st.integers(min_value=6, max_value=32),
        k=st.integers(min_value=2, max_value=8),
        env=environments,
    )
    def test_protocols_f_and_g(self, n, k, env):
        k = min(k, n - 1)
        for protocol in (ProtocolF(k=k), ProtocolG(k=k)):
            result = run_with_environment(
                protocol, complete_without_sense(n, seed=env["seed"]), env
            )
            result.verify()

    @COMMON_SETTINGS
    @given(
        n=st.integers(min_value=5, max_value=32),
        env=environments,
        failure_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_fault_tolerant_with_random_failures(self, n, env, failure_seed):
        import random

        f = (n - 1) // 2
        rng = random.Random(failure_seed)
        count = rng.randint(0, f)
        failed = set(rng.sample(range(n), count))
        if len(failed) >= n - 1:
            failed.pop()
        topology = complete_without_sense(n, seed=env["seed"])
        result = run_election(
            FaultTolerantElection(max_failures=f),
            topology,
            failed_positions=failed,
            delays=UniformDelay(env["delay_low"], 1.0),
            seed=env["seed"],
        )
        assert result.leader_position not in failed


class TestDeterminism:
    @COMMON_SETTINGS
    @given(n=st.integers(min_value=4, max_value=32),
           seed=st.integers(min_value=0, max_value=10**6))
    def test_same_seed_reproduces_the_run_exactly(self, n, seed):
        def run():
            return run_election(
                ProtocolE(),
                complete_without_sense(n, seed=seed),
                delays=UniformDelay(0.05, 1.0),
                seed=seed,
            )

        a, b = run(), run()
        assert a.leader_id == b.leader_id
        assert a.messages_total == b.messages_total
        assert a.elected_at == b.elected_at

    @COMMON_SETTINGS
    @given(n=st.integers(min_value=2, max_value=40))
    def test_unit_delay_elections_are_wiring_independent_for_sense(self, n):
        """With sense of direction, the wiring is fixed by the labels, so a
        simultaneous-wake unit-delay run is fully deterministic."""
        results = [
            run_election(
                ProtocolA(), complete_with_sense_of_direction(n),
                delays=ConstantDelay(1.0), seed=seed,
            )
            for seed in (0, 1)
        ]
        assert results[0].leader_id == results[1].leader_id == n - 1
