"""Behavioural tests for AG85 and Protocol ℰ (Section 4)."""

from __future__ import annotations

import math

import pytest

from repro.adversary import wakeup
from repro.adversary.congestion import hotspot_scenario
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.sim.delays import UniformDelay
from repro.sim.network import Network

from tests.conftest import elect_nosense


@pytest.mark.parametrize("protocol_cls", [AfekGafni, ProtocolE])
class TestElection:
    @pytest.mark.parametrize("n", [2, 3, 8, 17, 64])
    def test_elects_one_leader(self, protocol_cls, n):
        elect_nosense(protocol_cls(), n).verify()

    def test_single_base_wins_and_captures_everyone(self, protocol_cls):
        result = elect_nosense(
            protocol_cls(), 16, wakeup=wakeup.single_base(4)
        )
        assert result.leader_id == 4
        leader = result.node_snapshots[4]
        assert leader["level"] == 15

    def test_correct_under_random_delays(self, protocol_cls):
        for seed in range(6):
            elect_nosense(
                protocol_cls(), 20, topo_seed=seed,
                delays=UniformDelay(0.05, 1.0), seed=seed,
            ).verify()

    def test_ownership_chains_resolve(self, protocol_cls):
        """Staggered wake-ups force claims onto captured nodes, exercising
        the kill-the-owner forwarding path."""
        result = elect_nosense(
            protocol_cls(), 24,
            wakeup=wakeup.staggered_uniform(24, spread=8.0),
        )
        result.verify()


class TestMessageComplexity:
    def test_messages_are_n_log_n_ish(self):
        per_nlogn = []
        for n in (16, 64, 256):
            result = elect_nosense(ProtocolE(), n, topo_seed=1)
            per_nlogn.append(result.messages_total / (n * math.log2(n)))
        assert max(per_nlogn) / min(per_nlogn) < 2.5

    def test_flow_control_never_sends_more_than_ag85(self):
        for seed in range(4):
            ag = elect_nosense(AfekGafni(), 32, topo_seed=seed).messages_total
            e = elect_nosense(ProtocolE(), 32, topo_seed=seed).messages_total
            assert e <= ag + 4


class TestFlowControl:
    """ℰ's defining property: one forwarded claim in flight per owner link."""

    def test_hotspot_duel_separates_e_from_ag85(self):
        n = 64
        topo, wake, delays = hotspot_scenario(n)
        slow = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
        topo, wake, delays = hotspot_scenario(n)
        fast = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
        assert slow.leader_id == fast.leader_id == n - 1
        assert slow.election_time / fast.election_time >= 4.0

    def test_ag85_hotspot_time_is_linear(self):
        times = {}
        for n in (32, 128):
            topo, wake, delays = hotspot_scenario(n)
            times[n] = Network(
                AfekGafni(), topo, delays=delays, wakeup=wake
            ).run().election_time
        assert times[128] / times[32] > 3.0

    def test_e_hotspot_saves_the_forwarding_burst_messages(self):
        n = 64
        topo, wake, delays = hotspot_scenario(n)
        ag = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
        topo, wake, delays = hotspot_scenario(n)
        e = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
        # AG85 forwards the whole crowd; ℰ answers most from the buffer.
        assert ag.messages_total - e.messages_total >= n


class TestRoles:
    def test_every_non_leader_ends_captured_or_stalled(self):
        result = elect_nosense(ProtocolE(), 32)
        roles = {s["role"] for s in result.node_snapshots if not s["is_leader"]}
        assert roles <= {Role.CAPTURED.value, Role.STALLED.value}
