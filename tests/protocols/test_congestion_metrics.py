"""Link-load and forwarding-depth claims, measured.

Two quantitative statements from the paper's Section 3/4 analysis made
directly observable:

* a hotspot's owner link carries Θ(N) forwarded claims under AG85 but only
  O(1)-per-unit under ℰ (the ``max_channel_load`` metric);
* in Protocol C "each message can be forwarded at most twice"
  (the ``challenge_hops`` trace).
"""

from __future__ import annotations

import pytest

from repro.adversary.congestion import hotspot_scenario
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import Network, run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


class TestChannelLoad:
    def test_hotspot_owner_link_is_linear_under_ag85(self):
        loads = {}
        for n in (32, 128):
            topo, wake, delays = hotspot_scenario(n)
            result = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
            loads[n] = result.max_channel_load
        assert loads[128] / loads[32] > 3.0  # ~linear in N
        assert loads[128] >= 100

    def test_flow_control_caps_the_same_link(self):
        n = 128
        topo, wake, delays = hotspot_scenario(n)
        ag = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
        topo, wake, delays = hotspot_scenario(n)
        e = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
        assert e.max_channel_load < ag.max_channel_load / 4

    def test_benign_runs_have_modest_link_loads(self):
        result = run_election(ProtocolE(), complete_without_sense(64, seed=1))
        assert result.max_channel_load <= 16


class TestChallengeHops:
    def _max_hops(self, result):
        return max(
            (e.get("hops") for e in result.trace.of_kind("challenge_hops")),
            default=0,
        )

    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_protocol_c_forwards_at_most_twice(self, n):
        """The paper's phase-2 remark, verified on every sweep size."""
        network = Network(
            ProtocolC(), complete_with_sense_of_direction(n), trace=True
        )
        result = network.run()
        assert self._max_hops(result) <= 2

    def test_protocol_a_forwards_at_most_twice_too(self):
        network = Network(
            ProtocolA(), complete_with_sense_of_direction(64), trace=True
        )
        result = network.run()
        assert self._max_hops(result) <= 2

    def test_e_chains_stay_short_under_staggered_wakeups(self):
        from repro.adversary import wakeup

        network = Network(
            ProtocolE(), complete_without_sense(48, seed=3), trace=True,
            wakeup=wakeup.staggered_uniform(48, spread=12.0),
        )
        result = network.run()
        # owner chains strictly increase in strength, so hops are bounded
        # well below N even in the unstructured protocol
        assert self._max_hops(result) <= 6
