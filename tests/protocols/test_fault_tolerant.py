"""Behavioural tests for the fault-tolerant election (Section 4)."""

from __future__ import annotations

import math
import random

import pytest

from repro.adversary import wakeup
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.sim.delays import UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import complete_without_sense


def elect_ft(n, f, failed, **kwargs):
    topo = complete_without_sense(n, seed=kwargs.pop("topo_seed", 0))
    return run_election(
        FaultTolerantElection(max_failures=f), topo,
        failed_positions=failed, **kwargs,
    )


class TestValidation:
    def test_f_at_least_half_rejected(self):
        with pytest.raises(ConfigurationError, match="f < N/2"):
            elect_ft(8, 4, set())

    def test_negative_f_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultTolerantElection(max_failures=-1)


class TestElectionWithFailures:
    @pytest.mark.parametrize("n,f", [(8, 3), (16, 7), (31, 15)])
    def test_maximum_tolerable_failures(self, n, f):
        rng = random.Random(n)
        failed = set(rng.sample(range(n), f))
        result = elect_ft(n, f, failed)
        assert result.leader_position not in failed

    def test_no_failures_still_works(self):
        elect_ft(16, 5, set()).verify()

    def test_leader_captured_a_majority(self):
        result = elect_ft(16, 5, {1, 2, 3})
        leader = result.node_snapshots[result.leader_position]
        assert leader["level"] >= 16 // 2

    def test_fewer_actual_failures_than_budget(self):
        result = elect_ft(16, 7, {4})
        assert result.leader_position != 4

    def test_stress_random_configurations(self):
        for seed in range(15):
            rng = random.Random(seed)
            n = rng.choice([8, 16, 25])
            f = (n - 1) // 2
            failed = set(rng.sample(range(1, n), rng.randint(0, f)))
            result = elect_ft(
                n, f, failed, topo_seed=seed, seed=seed,
                delays=UniformDelay(0.05, 1.0),
            )
            assert result.leader_position not in failed

    def test_staggered_wakeups_with_failures(self):
        result = elect_ft(
            16, 5, {0, 1}, wakeup=wakeup.staggered_uniform(16, spread=8.0),
        )
        result.verify()


class TestComplexityEnvelope:
    def test_messages_grow_with_f_but_stay_in_the_envelope(self):
        n = 32
        budget = lambda f: 8 * (n * f + n * math.log2(n))  # noqa: E731
        for f in (0, 5, 10, 15):
            rng = random.Random(f)
            failed = set(rng.sample(range(1, n), f)) if f else set()
            result = elect_ft(n, max(f, 1), failed)
            assert result.messages_total <= budget(f)

    def test_window_scales_with_f_plus_log_n(self):
        from repro.protocols.nosense.fault_tolerant import FaultTolerantNode

        class FakeCtx:
            node_id = 0
            n = 64
            num_ports = 63
            has_sense_of_direction = False

        node = FaultTolerantNode.__new__(FaultTolerantNode)
        # window formula only needs ctx numbers
        node.__init__(FakeCtx(), 10)
        assert node.window == 10 + 6

    def test_dead_nodes_do_not_block_progress(self):
        """All of the leader's first `window` ports could be dead; the
        refill logic must keep live claims in flight."""
        n = 21
        failed = set(range(1, 11))  # 10 dead nodes, f < N/2
        result = elect_ft(n, 10, failed)
        assert result.leader_position not in failed
