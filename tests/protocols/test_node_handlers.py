"""White-box handler tests: every branch of each protocol state machine.

Integration runs rarely exercise the defensive branches (stale responses,
messages at a leader, unknown types); these tests inject messages directly
and assert the node's exact reaction.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.messages import Wakeup
from repro.protocols.common import Role
from repro.protocols.nosense.protocol_d import (
    BroadcastAccept,
    BroadcastElect,
    BroadcastReject,
    ProtocolD,
)
from repro.protocols.nosense.protocol_e import (
    ProtocolE,
    SeqAccept,
    SeqCapture,
    SeqReject,
)
from repro.protocols.nosense.protocol_f import (
    FloodAccept,
    FloodElect,
    FloodReject,
    ProtocolF,
)
from repro.protocols.nosense.protocol_g import (
    CheckOwner,
    CheckReply,
    FirstPhase,
    FPAccept,
    FPFinish,
    FPProceed,
    ProtocolG,
)
from repro.protocols.capture_base import Challenge
from repro.protocols.sense.protocol_a import (
    Capture,
    CaptureAccept,
    CaptureReject,
    Elect,
    ElectAccept,
    ElectReject,
    Owner,
    OwnerAck,
    ProtocolA,
    ProtocolAPrime,
)
from repro.protocols.sense.protocol_b import ProtocolB, StepCapture, StepReject

from tests.protocols.helpers import RecordingContext


def make_node(protocol, *, node_id=0, n=8, sense=False):
    ctx = RecordingContext(node_id=node_id, n=n, sense=sense)
    node = protocol.create_node(ctx)
    return node, ctx


class TestProtocolAHandlers:
    def test_passive_node_grants_capture_and_becomes_captured(self):
        node, ctx = make_node(ProtocolA(k=2), sense=True)
        node.receive(3, Capture(0, 5))
        assert node.role is Role.CAPTURED
        [(port, reply)] = ctx.take()
        assert port == 3 and reply == CaptureAccept(0)

    def test_already_captured_node_grants_zero(self):
        node, ctx = make_node(ProtocolA(k=2), sense=True)
        node.receive(3, Capture(0, 5))
        ctx.take()
        node.receive(4, Capture(2, 6))
        assert ctx.take() == [(4, CaptureAccept(0))]

    def test_candidate_contest_decides_by_level_then_id(self):
        node, ctx = make_node(ProtocolA(k=3), node_id=4, sense=True)
        node.wake(True)  # sends its first capture
        ctx.take()
        node.receive(5, Capture(0, 3))  # same level, smaller id: refused
        assert ctx.take() == [(5, CaptureReject())]
        assert node.role is Role.CANDIDATE
        node.receive(5, Capture(0, 6))  # same level, larger id: captured
        [(_, reply)] = ctx.take()
        assert reply == CaptureAccept(0)
        assert node.role is Role.CAPTURED

    def test_surrender_hands_over_the_level(self):
        node, ctx = make_node(ProtocolA(k=5), node_id=2, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(0, CaptureAccept(0))  # captures one node -> level 1
        ctx.take()
        node.receive(5, Capture(3, 7))  # stronger challenger
        [(_, reply)] = ctx.take()
        assert reply == CaptureAccept(1)  # surrenders its 1 capture

    def test_leader_refuses_captures(self):
        node, ctx = make_node(ProtocolA(k=1), node_id=7, n=2, sense=True)
        node.wake(True)
        node.receive(0, CaptureAccept(0))  # level 1 = k -> phase 2
        node.receive(0, OwnerAck())  # window acked; lattice empty -> leader
        assert node.role is Role.LEADER
        ctx.take()
        node.receive(0, Capture(0, 9))
        assert ctx.take() == [(0, CaptureReject())]

    def test_stale_capture_accept_ignored_when_stalled(self):
        node, ctx = make_node(ProtocolA(k=3), node_id=1, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(0, CaptureReject())
        assert node.role is Role.STALLED
        node.receive(0, CaptureAccept(0))  # late grant changes nothing
        assert node.level == 0
        assert ctx.take() == []

    def test_phase2_sends_owner_messages_then_elects(self):
        node, ctx = make_node(ProtocolA(k=2), node_id=7, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(0, CaptureAccept(1))  # jumps to level 2 = k -> phase 2
        owners = ctx.take()
        assert [m.type_name for _, m in owners] == ["Owner", "Owner"]
        node.receive(0, OwnerAck())
        assert ctx.take() == []  # still waiting for the second ack
        node.receive(1, OwnerAck())
        elects = ctx.take()
        assert all(isinstance(m, Elect) for _, m in elects)
        # lattice distances {4, 6} at N=8, k=2 -> ports 3 and 5
        assert [port for port, _ in elects] == [3, 5]

    def test_elect_at_weaker_candidate_captures_it(self):
        node, ctx = make_node(ProtocolA(k=3), node_id=1, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(6, Elect(3, 9))
        assert node.role is Role.CAPTURED
        assert node.owner_strength is not None
        assert ctx.take() == [(6, ElectAccept())]

    def test_elect_at_stronger_candidate_is_refused(self):
        node, ctx = make_node(ProtocolA(k=3), node_id=5, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(6, Elect(0, 2))
        assert ctx.take() == [(6, ElectReject())]

    def test_unknown_message_raises(self):
        node, ctx = make_node(ProtocolA(k=2), sense=True)
        with pytest.raises(ConfigurationError, match="cannot handle"):
            node.receive(0, StepCapture(0, 1))

    def test_wakeup_message_is_inert(self):
        node, ctx = make_node(ProtocolA(k=2), sense=True)
        node.receive(0, Wakeup())
        assert ctx.take() == []
        assert node.awake and not node.is_base


class TestProtocolAPrimeHandlers:
    def test_wake_nudges_distance_1_and_k(self):
        node, ctx = make_node(ProtocolAPrime(k=3), node_id=2, sense=True)
        node.wake(True)
        sent = ctx.take()
        nudges = [(p, m) for p, m in sent if isinstance(m, Wakeup)]
        assert [p for p, _ in nudges] == [0, 2]  # labels 1 and 3

    def test_k_equal_one_sends_a_single_nudge(self):
        node, ctx = make_node(ProtocolAPrime(k=1), node_id=2, sense=True)
        node.receive(0, Wakeup())  # passive wake still spreads
        nudges = [m for _, m in ctx.take() if isinstance(m, Wakeup)]
        assert len(nudges) == 1


class TestProtocolBHandlers:
    def test_claim_at_weaker_candidate_captures(self):
        node, ctx = make_node(ProtocolB(), node_id=1, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(2, StepCapture(1, 6))
        assert node.role is Role.CAPTURED
        assert ctx.sent_types() == ["StepAccept"]

    def test_claim_at_stronger_candidate_refused(self):
        node, ctx = make_node(ProtocolB(), node_id=6, sense=True)
        node.wake(True)
        ctx.take()
        node.receive(2, StepCapture(0, 1))
        assert ctx.take() == [(2, StepReject())]

    def test_reject_kills_the_candidate(self):
        node, ctx = make_node(ProtocolB(), node_id=6, sense=True)
        node.wake(True)
        node.receive(3, StepReject())
        assert node.role is Role.STALLED


class TestProtocolDHandlers:
    def test_larger_base_node_withholds(self):
        node, ctx = make_node(ProtocolD(), node_id=6)
        node.wake(True)
        ctx.take()
        node.receive(2, BroadcastElect(3))
        assert ctx.take() == [(2, BroadcastReject())]

    def test_everyone_else_grants(self):
        node, ctx = make_node(ProtocolD(), node_id=6)
        node.receive(2, BroadcastElect(3))  # passive: grants
        assert ctx.take() == [(2, BroadcastAccept())]

    def test_leader_needs_all_grants(self):
        node, ctx = make_node(ProtocolD(), node_id=6, n=3)
        node.wake(True)
        ctx.take()
        node.receive(0, BroadcastAccept())
        assert not node.is_leader
        node.receive(1, BroadcastAccept())
        assert node.is_leader and ctx.leader_declared


class TestProtocolEFlowControl:
    def _captured_node(self):
        node, ctx = make_node(ProtocolE(), node_id=0)
        node.receive(5, SeqCapture(2, 9))  # captured by 9 via port 5
        ctx.take()
        return node, ctx

    def test_second_claim_forwards_one_challenge(self):
        node, ctx = self._captured_node()
        node.receive(1, SeqCapture(3, 7))
        [(port, message)] = ctx.take()
        assert port == 5 and isinstance(message, Challenge)

    def test_third_claim_is_buffered_not_forwarded(self):
        node, ctx = self._captured_node()
        node.receive(1, SeqCapture(3, 7))
        ctx.take()
        node.receive(2, SeqCapture(3, 8))
        assert ctx.take() == []  # buffered silently

    def test_weaker_overflow_claim_is_refused_immediately(self):
        node, ctx = self._captured_node()
        node.receive(1, SeqCapture(3, 7))
        ctx.take()
        node.receive(2, SeqCapture(4, 8))  # buffered (strongest)
        node.receive(3, SeqCapture(3, 6))  # weaker than the buffer
        assert ctx.take() == [(3, SeqReject())]

    def test_stronger_claim_displaces_and_refuses_the_buffer(self):
        node, ctx = self._captured_node()
        node.receive(1, SeqCapture(3, 7))
        ctx.take()
        node.receive(2, SeqCapture(3, 6))  # buffered
        node.receive(3, SeqCapture(4, 8))  # displaces it
        assert ctx.take() == [(2, SeqReject())]

    def test_verdict_releases_the_buffer_toward_the_new_owner(self):
        from repro.protocols.capture_base import ChallengeVerdict

        node, ctx = self._captured_node()
        node.receive(1, SeqCapture(3, 7))
        [(_, challenge)] = ctx.take()
        node.receive(2, SeqCapture(4, 8))  # buffered
        node.receive(5, ChallengeVerdict(challenge.token, True))
        sent = ctx.take()
        # the winner (port 1) gets its grant, then the buffered claim is
        # forwarded to the NEW owner via port 1
        assert (1, SeqAccept()) in sent
        forwards = [(p, m) for p, m in sent if isinstance(m, Challenge)]
        assert [p for p, _ in forwards] == [1]


class TestProtocolFHandlers:
    def test_flood_at_passive_node_grants_and_installs_owner(self):
        node, ctx = make_node(ProtocolF(k=2), node_id=0)
        node.receive(3, FloodElect(4, 9))
        assert node.role is Role.CAPTURED
        assert ctx.take() == [(3, FloodAccept())]

    def test_flood_at_stronger_candidate_is_refused(self):
        node, ctx = make_node(ProtocolF(k=2), node_id=9)
        node.wake(True)
        ctx.take()
        node.level = 6
        node.receive(3, FloodElect(4, 5))
        assert ctx.take() == [(3, FloodReject())]

    def test_flood_reject_stalls_the_flooder(self):
        node, ctx = make_node(ProtocolF(k=8), node_id=4)
        node.wake(True)
        ctx.take()
        node.receive(0, SeqAccept())  # level 1 >= ceil(8/8) -> floods
        assert node.flooding
        ctx.take()
        node.receive(2, FloodReject())
        assert node.role is Role.STALLED


class TestProtocolGHandlers:
    def test_wake_asks_k_neighbours_for_permission(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=2)
        node.wake(True)
        sent = ctx.take()
        assert [p for p, _ in sent] == [0, 1, 2]
        assert all(isinstance(m, FirstPhase) for _, m in sent)

    def test_passive_target_grants_and_is_captured(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=5)
        node.receive(2, FirstPhase(1))
        assert node.role is Role.CAPTURED
        assert ctx.take() == [(2, FPAccept())]

    def test_in_first_phase_target_says_proceed(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=5)
        node.wake(True)
        ctx.take()
        node.receive(4, FirstPhase(1))
        assert ctx.take() == [(4, FPProceed())]

    def test_finished_target_says_finish(self):
        node, ctx = make_node(ProtocolG(k=2), node_id=5)
        node.wake(True)
        ctx.take()
        node.receive(0, FPProceed())
        node.receive(1, FPProceed())  # first phase over, second begun
        ctx.take()
        node.receive(4, FirstPhase(1))
        assert ctx.take() == [(4, FPFinish())]

    def test_captured_target_checks_its_owner_once_and_queues_askers(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=5)
        node.receive(2, FirstPhase(1))  # captured via port 2
        ctx.take()
        node.receive(3, FirstPhase(6))
        assert ctx.take() == [(2, CheckOwner())]
        node.receive(4, FirstPhase(7))  # queued behind the open check
        assert ctx.take() == []
        node.receive(2, CheckReply(False))
        assert sorted(ctx.take()) == [(3, FPProceed()), (4, FPProceed())]

    def test_positive_check_reply_is_cached(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=5)
        node.receive(2, FirstPhase(1))
        ctx.take()
        node.receive(3, FirstPhase(6))
        ctx.take()
        node.receive(2, CheckReply(True))
        assert ctx.take() == [(3, FPFinish())]
        node.receive(4, FirstPhase(7))  # answered instantly from the cache
        assert ctx.take() == [(4, FPFinish())]

    def test_any_finish_kills_the_asker(self):
        node, ctx = make_node(ProtocolG(k=2), node_id=5)
        node.wake(True)
        ctx.take()
        node.receive(0, FPFinish())
        node.receive(1, FPAccept())
        assert node.role is Role.STALLED
        assert node.first_finished

    def test_capture_treats_pre_second_phase_candidate_as_passive(self):
        node, ctx = make_node(ProtocolG(k=3), node_id=9)
        node.wake(True)  # in first phase, id 9 (largest!)
        ctx.take()
        node.receive(4, SeqCapture(0, 1))
        assert node.role is Role.CAPTURED  # captured despite the bigger id
        assert ctx.sent_types() == ["SeqAccept"]
