"""Behavioural tests for the Hirschberg–Sinclair ring baseline."""

from __future__ import annotations

import math

import pytest

from repro.adversary import wakeup
from repro.protocols.sense.hirschberg_sinclair import HirschbergSinclair
from repro.sim.delays import UniformDelay
from repro.sim.network import run_election
from repro.topology.chordal_ring import ChordalRingTopology
from repro.topology.complete import complete_with_sense_of_direction

from tests.conftest import elect_sense


class TestElection:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 33])
    def test_elects_one_leader(self, n):
        elect_sense(HirschbergSinclair(), n).verify()

    def test_max_base_id_wins(self):
        result = elect_sense(
            HirschbergSinclair(), 16, wakeup={2: 0.0, 9: 0.0, 4: 1.0}
        )
        assert result.leader_id == 9

    def test_passive_nodes_relay_but_never_veto(self):
        """Validity: a sleeping giant must not block the election."""
        result = elect_sense(
            HirschbergSinclair(), 16, wakeup=wakeup.single_base(0)
        )
        assert result.leader_id == 0  # id 15 never woke, so 0 wins

    def test_runs_on_chordal_rings(self):
        ring = ChordalRingTopology(20)
        result = run_election(HirschbergSinclair(), ring)
        assert result.leader_id == 19

    def test_correct_under_random_delays(self):
        for seed in range(5):
            elect_sense(
                HirschbergSinclair(), 12,
                delays=UniformDelay(0.05, 1.0), seed=seed,
            ).verify()


class TestComplexity:
    def test_messages_are_n_log_n_even_for_descending_ids(self):
        """HS's guarantee over Chang–Roberts: the worst case is still
        O(N log N)."""
        per_nlogn = []
        for n in (16, 64, 256):
            topo = complete_with_sense_of_direction(
                n, ids=list(reversed(range(n)))
            )
            msgs = run_election(HirschbergSinclair(), topo).messages_total
            per_nlogn.append(msgs / (n * math.log2(n)))
        assert max(per_nlogn) / min(per_nlogn) < 2.5

    def test_winner_runs_log_n_phases(self):
        result = elect_sense(HirschbergSinclair(), 32)
        winner = result.node_snapshots[result.leader_position]
        assert winner["phase"] <= math.ceil(math.log2(32)) + 1

    def test_time_is_linear(self):
        t32 = elect_sense(HirschbergSinclair(), 32).election_time
        t128 = elect_sense(HirschbergSinclair(), 128).election_time
        assert t128 / t32 > 3.0
