"""Shared white-box test harness: a recording NodeContext.

Lets handler tests drive a protocol node directly — inject any message on
any port, inspect exactly what it sent back — without a network, scheduler
or second node.  Sense-of-direction lookups map label ``d`` to port
``d - 1`` as the real topology does.
"""

from __future__ import annotations

from repro.core.messages import Message
from repro.core.node import NodeContext


class RecordingContext(NodeContext):
    """Captures sends and leader declarations instead of delivering them."""

    def __init__(self, node_id: int = 0, n: int = 8, *, sense: bool = False):
        self.node_id = node_id
        self.n = n
        self.num_ports = n - 1
        self.has_sense_of_direction = sense
        self.sent: list[tuple[int, Message]] = []
        self.leader_declared = False

    def send(self, port: int, message: Message) -> None:
        self.sent.append((port, message))

    def port_label(self, port: int):
        return port + 1 if self.has_sense_of_direction else None

    def port_with_label(self, distance: int) -> int:
        assert self.has_sense_of_direction
        return distance - 1

    def now(self) -> float:
        return 0.0

    def declare_leader(self) -> None:
        self.leader_declared = True

    def trace(self, kind: str, **detail) -> None:
        pass

    # -- assertions -----------------------------------------------------------

    def take(self) -> list[tuple[int, Message]]:
        """Pop and return everything sent since the last call."""
        out, self.sent = self.sent, []
        return out

    def sent_types(self) -> list[str]:
        """Type names of everything sent since the last take()."""
        return [message.type_name for _, message in self.sent]
