"""Behavioural tests for Protocol D (Section 4)."""

from __future__ import annotations

import pytest

from repro.adversary import wakeup
from repro.protocols.nosense.protocol_d import ProtocolD
from repro.sim.delays import UniformDelay

from tests.conftest import elect_nosense


class TestElection:
    @pytest.mark.parametrize("n", [2, 3, 8, 17, 64])
    def test_elects_one_leader(self, n):
        elect_nosense(ProtocolD(), n).verify()

    def test_largest_base_id_always_wins(self):
        """Only a base node with a larger identity withholds its grant, so
        the maximum base identity collects all N-1 grants."""
        for bases in ({0: 0.0}, {0: 0.0, 3: 0.0}, {1: 0.0, 2: 1.0, 5: 0.5}):
            result = elect_nosense(ProtocolD(), 8, wakeup=bases)
            assert result.leader_position == max(bases)

    def test_correct_under_random_delays_and_wirings(self):
        for seed in range(6):
            result = elect_nosense(
                ProtocolD(), 24, topo_seed=seed,
                delays=UniformDelay(0.05, 1.0), seed=seed,
            )
            assert result.leader_id == 23


class TestComplexity:
    def test_constant_time_one_round_trip(self):
        for n in (8, 64, 256):
            result = elect_nosense(ProtocolD(), n)
            assert result.election_time == 2.0
            assert result.election_depth == 2

    def test_quadratic_messages_when_everyone_is_base(self):
        for n in (8, 32):
            result = elect_nosense(ProtocolD(), n)
            # n broadcasts of n-1 plus n-1 responses to the winner and the
            # responses among losers: at least n(n-1), at most 2n(n-1).
            assert n * (n - 1) <= result.messages_total <= 2 * n * (n - 1)

    def test_single_base_costs_linear_messages(self):
        result = elect_nosense(ProtocolD(), 32, wakeup=wakeup.single_base(0))
        assert result.messages_total == 2 * 31
