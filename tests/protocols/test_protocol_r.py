"""Behavioural tests for Protocol R (the reconstructed [Si92] refinement)."""

from __future__ import annotations

import math

import pytest

from repro.adversary import wakeup
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.sim.delays import UniformDelay
from repro.sim.network import run_election
from repro.topology.complete import complete_without_sense

from tests.conftest import elect_nosense


class TestElection:
    @pytest.mark.parametrize("n", [6, 8, 17, 64])
    def test_elects_one_leader(self, n):
        elect_nosense(ProtocolR(), n).verify()

    def test_correct_under_random_environments(self):
        for seed in range(10):
            elect_nosense(
                ProtocolR(), 24, topo_seed=seed,
                delays=UniformDelay(0.05, 1.0), seed=seed,
                wakeup=wakeup.random_subset(
                    1 + seed % 20, window=5.0, seed_offset=seed
                ),
            ).verify()

    def test_default_k_is_log_n(self):
        assert ProtocolR().effective_k(256) == 8
        assert ProtocolR().effective_k(2) == 1


class TestBaseNodeSensitivity:
    """The O(log N + min(r, N/log N)) shape the paper claims via [Si92]."""

    def test_lone_base_node_finishes_in_logarithmic_time(self):
        times = {}
        for n in (64, 256):
            result = elect_nosense(
                ProtocolR(), n, topo_seed=3, wakeup=wakeup.single_base(0)
            )
            times[n] = result.election_time
            assert result.election_time <= 6 * math.log2(n)
        # quadrupling N adds ~a constant, not a factor
        assert times[256] - times[64] <= 10

    def test_time_plateaus_below_n_over_log_n(self):
        n = 128
        for r in (1, 16, 128):
            result = elect_nosense(
                ProtocolR(), n, topo_seed=3,
                wakeup=wakeup.random_subset(r, seed_offset=5),
            )
            assert result.election_time <= 4 * (
                math.log2(n) + min(r, n / math.log2(n))
            )

    def test_r_beats_g_for_a_lone_base_node(self):
        n = 128
        g = elect_nosense(ProtocolG(), n, topo_seed=2,
                          wakeup=wakeup.single_base(0))
        r = elect_nosense(ProtocolR(), n, topo_seed=2,
                          wakeup=wakeup.single_base(0))
        assert r.election_time < g.election_time / 2

    def test_messages_stay_n_log_n(self):
        per_nlogn = []
        for n in (32, 128):
            result = elect_nosense(ProtocolR(), n, topo_seed=1)
            per_nlogn.append(result.messages_total / (n * math.log2(n)))
        assert max(per_nlogn) <= 8.0


class TestWaveMechanics:
    def test_wave_width_tracks_the_level(self):
        """The snapshot exposes the doubling pattern."""
        result = elect_nosense(
            ProtocolR(), 64, topo_seed=1, wakeup=wakeup.single_base(0)
        )
        winner = result.node_snapshots[0]
        assert winner["wave_width"] >= 1

    def test_flood_level_is_frozen(self):
        """Wave grants landing after the flood must not raise the level —
        otherwise a dead candidate could veto every live flood."""
        for seed in (1, 6):  # seeds that historically deadlocked
            result = elect_nosense(
                ProtocolR(), 32, topo_seed=seed,
                delays=UniformDelay(0.05, 1.0), seed=seed,
                wakeup=wakeup.random_subset(9, window=5.0, seed_offset=seed),
            )
            result.verify()
