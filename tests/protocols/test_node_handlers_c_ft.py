"""White-box handler tests for Protocol C and the fault-tolerant variant."""

from __future__ import annotations

import pytest

from repro.protocols.common import Role
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_e import SeqAccept, SeqCapture, SeqReject
from repro.protocols.sense.protocol_c import (
    LatticeAccept,
    LatticeCapture,
    LatticeReject,
    OwnerUpdate,
    OwnerUpdateAck,
    ProtocolC,
    Sweep,
    SweepAccept,
    SweepReject,
)

from tests.protocols.helpers import RecordingContext


def make_c_node(*, node_id=0, n=16, k=4):
    ctx = RecordingContext(node_id=node_id, n=n, sense=True)
    node = ProtocolC(k=k).create_node(ctx)
    return node, ctx


def make_ft_node(*, node_id=0, n=8, f=2, parallelism=None):
    ctx = RecordingContext(node_id=node_id, n=n)
    node = FaultTolerantElection(
        max_failures=f, parallelism=parallelism
    ).create_node(ctx)
    return node, ctx


class TestProtocolCPhase1:
    def test_wake_claims_the_first_class_member(self):
        node, ctx = make_c_node(node_id=2, n=16, k=4)
        node.wake(True)
        [(port, message)] = ctx.take()
        assert port == 3  # distance k=4 -> port 3
        assert message == LatticeCapture(0, 2)

    def test_passive_class_member_grants_zero(self):
        node, ctx = make_c_node()
        node.receive(3, LatticeCapture(0, 9))
        assert node.role is Role.CAPTURED
        assert ctx.take() == [(3, LatticeAccept(0))]

    def test_contest_surrenders_the_lattice_level(self):
        node, ctx = make_c_node(node_id=2)
        node.wake(True)
        ctx.take()
        node.receive(3, LatticeAccept(0))  # lattice level 1
        ctx.take()
        node.receive(5, LatticeCapture(2, 9))  # stronger classmate
        [(_, reply)] = ctx.take()
        assert reply == LatticeAccept(1)
        assert node.role is Role.CAPTURED

    def test_weaker_classmate_is_refused(self):
        node, ctx = make_c_node(node_id=9)
        node.wake(True)
        ctx.take()
        node.receive(5, LatticeCapture(0, 2))
        assert ctx.take() == [(5, LatticeReject())]

    def test_surrender_accounting_advances_the_conquest(self):
        node, ctx = make_c_node(node_id=2, n=16, k=4)  # class size 4
        node.wake(True)
        ctx.take()
        node.receive(3, LatticeAccept(1))  # inherits one member: level 2
        [(port, message)] = ctx.take()
        assert message == LatticeCapture(2, 2)
        assert port == 11  # next target at distance 3k=12


class TestProtocolCPhase2:
    def _winner(self):
        """A node that just finished phase 1 (class size 4 at N=16,k=4)."""
        node, ctx = make_c_node(node_id=3, n=16, k=4)
        node.wake(True)
        ctx.take()
        node.receive(3, LatticeAccept(2))  # level 3 = class_size-1 -> phase 2
        return node, ctx

    def test_phase2_entry_updates_owners_across_the_class(self):
        node, ctx = self._winner()
        updates = ctx.take()
        assert [m.type_name for _, m in updates] == ["OwnerUpdate"] * 3
        assert [p for p, _ in updates] == [3, 7, 11]  # distances 4, 8, 12

    def test_sweeps_double_after_all_owner_acks(self):
        node, ctx = self._winner()
        ctx.take()
        for port in (3, 7, 11):
            node.receive(port, OwnerUpdateAck())
        [(port, sweep)] = ctx.take()
        assert isinstance(sweep, Sweep)
        assert port == 1  # first doubling target at distance k/2 = 2
        node.receive(1, SweepAccept())
        step2 = ctx.take()
        assert [p for p, _ in step2] == [0, 2]  # distances 1 and 3

    def test_sweep_reject_kills(self):
        node, ctx = self._winner()
        ctx.take()
        for port in (3, 7, 11):
            node.receive(port, OwnerUpdateAck())
        ctx.take()
        node.receive(1, SweepReject())
        assert node.role is Role.STALLED

    def test_sweep_at_weaker_class_winner_captures_it(self):
        node, ctx = make_c_node(node_id=1)
        node.wake(True)
        ctx.take()
        node.receive(6, Sweep(5, 9))
        assert node.role is Role.CAPTURED
        assert ctx.sent_types() == ["SweepAccept"]


class TestFaultTolerantWindow:
    def test_wake_fills_the_whole_window(self):
        node, ctx = make_ft_node(n=8, f=2, parallelism=3)
        node.wake(True)
        claims = ctx.take()
        assert len(claims) == 5  # window = f + parallelism
        assert all(isinstance(m, SeqCapture) for _, m in claims)

    def test_rejects_refill_from_fresh_ports(self):
        node, ctx = make_ft_node(n=8, f=1, parallelism=1)
        node.wake(True)
        ctx.take()  # two claims out (window=2)
        node.receive(0, SeqReject())
        refill = ctx.take()
        assert len(refill) == 1  # a fresh port keeps the window full
        assert node.role is Role.CANDIDATE  # reject was not fatal

    def test_refused_port_retried_only_after_a_level_up(self):
        node, ctx = make_ft_node(n=8, f=1, parallelism=1)
        node.wake(True)
        ctx.take()
        node.receive(0, SeqReject())
        ctx.take()
        assert (0, 0) in node._retry_ports
        node.receive(1, SeqAccept())  # level 1
        sent_ports = [p for p, _ in ctx.take()]
        assert 0 in sent_ports  # the refused port is back in flight

    def test_majority_declares(self):
        node, ctx = make_ft_node(node_id=7, n=8, f=2)
        node.wake(True)
        ctx.take()
        for port in range(4):  # majority = n//2 = 4 grants
            node.receive(port, SeqAccept())
        assert node.is_leader
        assert ctx.leader_declared

    def test_starvation_rule_stalls_a_truly_beaten_candidate(self):
        node, ctx = make_ft_node(node_id=0, n=4, f=1, parallelism=2)
        node.wake(True)
        ctx.take()  # claims on all 3 ports (window 3 = n-1)
        for port in range(3):
            node.receive(port, SeqReject())
        # refused at level 0 on every port, nothing fresh left: defeated
        assert node.role is Role.STALLED
