"""Behavioural tests for Protocol A and A′ (Section 3)."""

from __future__ import annotations

import math

import pytest

from repro.adversary import wakeup
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime, default_k
from repro.sim.network import run_election
from repro.topology.complete import complete_with_sense_of_direction

from tests.conftest import elect_sense


class TestDefaultK:
    def test_default_k_is_ceil_sqrt_n(self):
        assert default_k(16) == 4
        assert default_k(17) == 5
        assert default_k(100) == 10

    def test_default_k_clamped_for_tiny_networks(self):
        assert default_k(2) == 1


class TestElection:
    @pytest.mark.parametrize("n", [2, 3, 5, 8, 16, 33, 64])
    def test_elects_exactly_one_leader_at_any_size(self, n):
        result = elect_sense(ProtocolA(), n)
        result.verify()

    def test_simultaneous_wake_elects_the_largest_id(self):
        """With identical wake times and unit delays, contests are decided
        purely by identity, so the largest base node must win."""
        result = elect_sense(ProtocolA(), 32)
        assert result.leader_id == 31

    def test_single_base_node_wins_unopposed(self):
        result = elect_sense(ProtocolA(), 16, wakeup=wakeup.single_base(3))
        assert result.leader_id == 3
        # Unopposed: one capture+accept per window node, owner round, elects.
        assert result.messages_total <= 6 * 16

    @pytest.mark.parametrize("k", [1, 2, 4, 8, 15])
    def test_every_k_is_correct(self, k):
        result = elect_sense(ProtocolA(k=k), 16)
        result.verify()


class TestMessageComplexity:
    def test_messages_linear_at_default_k(self):
        """O(N + N²/k²) = O(N) at k = √N; constants stay in a tight band."""
        per_node = []
        for n in (16, 64, 256):
            result = elect_sense(ProtocolA(), n)
            per_node.append(result.messages_total / n)
        assert max(per_node) / min(per_node) < 2.0

    def test_small_k_pays_the_quadratic_term(self):
        n = 64
        msgs_small_k = elect_sense(ProtocolA(k=2), n).messages_total
        msgs_sqrt_k = elect_sense(ProtocolA(k=8), n).messages_total
        assert msgs_small_k > msgs_sqrt_k


class TestChainWakeup:
    """The Section 3 pathology: node i+1 wakes just before i's capture lands."""

    def test_chain_forces_linear_time_on_a(self):
        times = {}
        for n in (32, 128):
            result = elect_sense(
                ProtocolA(), n, wakeup=wakeup.staggered_chain()
            )
            times[n] = result.election_time
        assert times[128] / times[32] > 3.0  # ~linear, not √N

    def test_chain_survivor_is_the_last_chain_node(self):
        result = elect_sense(ProtocolA(), 32, wakeup=wakeup.staggered_chain())
        assert result.leader_id == 31

    def test_awaken_spreading_caps_a_prime(self):
        n = 128
        slow = elect_sense(ProtocolA(), n, wakeup=wakeup.staggered_chain())
        fast = elect_sense(ProtocolAPrime(), n, wakeup=wakeup.staggered_chain())
        assert fast.election_time < slow.election_time / 2
        assert fast.election_time <= 6 * math.sqrt(n)

    def test_awaken_messages_cost_only_o_n_extra(self):
        n = 64
        bare = elect_sense(ProtocolA(), n).messages_total
        spread = elect_sense(ProtocolAPrime(), n).messages_total
        assert spread - bare <= 2 * n + 4


class TestCapturedSetContiguity:
    def test_levels_report_contiguous_windows(self):
        """Protocol A's invariant: a candidate's captured set is always
        i[1..level], so the sum of surviving levels cannot exceed N."""
        topology = complete_with_sense_of_direction(32)
        result = run_election(ProtocolA(), topology)
        total_captured = sum(
            s["level"] for s in result.node_snapshots
            if s["role"] in ("candidate", "leader")
        )
        assert total_captured <= 32
