"""Tests for the baseline protocols: LMW86 and Chang–Roberts."""

from __future__ import annotations

import pytest

from repro.adversary import wakeup
from repro.protocols.sense.chang_roberts import ChangRoberts
from repro.protocols.sense.lmw86 import LMW86
from repro.topology.chordal_ring import ChordalRingTopology
from repro.sim.network import run_election

from tests.conftest import elect_sense


class TestLMW86:
    @pytest.mark.parametrize("n", [2, 3, 7, 16, 50])
    def test_elects_one_leader(self, n):
        elect_sense(LMW86(), n).verify()

    def test_k_is_the_majority_window(self):
        assert LMW86().effective_k(16) == 8
        assert LMW86().effective_k(17) == 9
        assert LMW86().effective_k(2) == 1

    def test_messages_linear(self):
        per_node = [
            elect_sense(LMW86(), n).messages_total / n for n in (16, 64, 256)
        ]
        assert max(per_node) / min(per_node) < 1.6

    def test_time_linear_even_with_simultaneous_wakeup(self):
        """Capturing a majority sequentially costs Θ(N) time — the gap
        Protocol A/C close."""
        t64 = elect_sense(LMW86(), 64).election_time
        t256 = elect_sense(LMW86(), 256).election_time
        assert t256 / t64 > 3.0

    def test_winner_holds_a_majority(self):
        result = elect_sense(LMW86(), 20)
        leader = result.node_snapshots[result.leader_position]
        assert leader["level"] >= 10


class TestChangRoberts:
    @pytest.mark.parametrize("n", [2, 3, 8, 21])
    def test_elects_one_leader(self, n):
        elect_sense(ChangRoberts(), n).verify()

    def test_max_base_id_wins(self):
        result = elect_sense(
            ChangRoberts(), 12, wakeup={3: 0.0, 7: 0.2, 5: 1.0}
        )
        assert result.leader_id == 7

    def test_runs_on_chordal_rings(self):
        ring = ChordalRingTopology(24)
        result = run_election(ChangRoberts(), ring)
        assert result.leader_id == 23

    def test_token_circles_once_for_a_single_base(self):
        result = elect_sense(ChangRoberts(), 16, wakeup=wakeup.single_base(4))
        assert result.leader_id == 4
        assert result.messages_total == 16  # one full lap

    def test_descending_ids_cost_quadratic_messages(self):
        """The classical Chang–Roberts worst case: every prefix token
        travels far before being swallowed."""
        n = 32
        from repro.topology.complete import complete_with_sense_of_direction

        descending = complete_with_sense_of_direction(
            n, ids=list(reversed(range(n)))
        )
        worst = run_election(ChangRoberts(), descending)
        ascending = elect_sense(ChangRoberts(), n)
        assert worst.messages_total > 4 * ascending.messages_total
