"""Unit tests for the kill-the-owner contest machinery.

Driven through a miniature harness so the token bookkeeping, relay hops and
owner switching can be asserted in isolation from any full protocol.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.core.errors import ProtocolViolation
from repro.core.messages import Message
from repro.core.node import NodeContext
from repro.core.strength import Strength
from repro.protocols.capture_base import Challenge, ChallengeVerdict, ContestNode
from repro.protocols.common import Role


class RecordingContext(NodeContext):
    """Captures sends instead of delivering them."""

    def __init__(self, node_id=0, n=8):
        self.node_id = node_id
        self.n = n
        self.num_ports = n - 1
        self.has_sense_of_direction = False
        self.sent: list[tuple[int, Message]] = []

    def send(self, port, message):
        self.sent.append((port, message))

    def port_label(self, port):
        return None

    def port_with_label(self, distance):
        raise AssertionError("not used")

    def now(self):
        return 0.0

    def declare_leader(self):
        pass

    def trace(self, kind, **detail):
        pass


class Reply(Message):
    pass


class TestNode(ContestNode):
    __test__ = False  # not a pytest collection target

    def __init__(self, ctx, strength=Strength(0, 0)):
        super().__init__(ctx)
        self._strength = strength

    def current_strength(self):
        return self._strength

    def make_reply(self, kind: str, won: bool) -> Message:
        assert kind == "test"
        return Reply()

    def on_wake(self, spontaneous):
        pass

    def on_message(self, port, message):
        pass

    def snapshot(self) -> dict[str, Any]:
        return super().snapshot()


class TestClaimUnowned:
    def test_first_claim_succeeds_immediately(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")
        assert node.owner_port == 2
        assert node.owner_strength == Strength(1, 5)
        assert node.role is Role.CAPTURED
        port, message = ctx.sent[0]
        assert port == 2 and isinstance(message, Reply)


class TestClaimOwned:
    def test_second_claim_is_forwarded_to_the_owner(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")
        ctx.sent.clear()
        node.claim(3, Strength(2, 6), "test")
        port, message = ctx.sent[0]
        assert port == 2  # the owner link
        assert isinstance(message, Challenge)
        assert (message.rank, message.cand) == (2, 6)

    def test_winning_verdict_switches_owner_and_replies(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")
        node.claim(3, Strength(2, 6), "test")
        challenge = ctx.sent[-1][1]
        ctx.sent.clear()
        node.handle_verdict(2, ChallengeVerdict(challenge.token, True))
        assert node.owner_port == 3
        assert node.owner_strength == Strength(2, 6)
        assert ctx.sent == [(3, ctx.sent[0][1])]
        assert isinstance(ctx.sent[0][1], Reply)

    def test_losing_verdict_keeps_owner(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")
        node.claim(3, Strength(0, 1), "test")
        challenge = ctx.sent[-1][1]
        node.handle_verdict(2, ChallengeVerdict(challenge.token, False))
        assert node.owner_port == 2
        assert node.owner_strength == Strength(1, 5)

    def test_interleaved_verdicts_matched_by_token(self):
        """Two challenges to different owners resolve out of order."""
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")
        node.claim(3, Strength(2, 6), "test")
        first = ctx.sent[-1][1]
        node.claim(4, Strength(3, 7), "test")
        second = ctx.sent[-1][1]
        assert first.token != second.token
        ctx.sent.clear()
        # resolve the *second* challenge first
        node.handle_verdict(2, ChallengeVerdict(second.token, True))
        assert node.owner_port == 4
        node.handle_verdict(2, ChallengeVerdict(first.token, False))
        assert node.owner_port == 4  # unchanged by the stale loss

    def test_unknown_verdict_token_is_a_protocol_violation(self):
        node = TestNode(RecordingContext())
        with pytest.raises(ProtocolViolation, match="unknown token"):
            node.handle_verdict(0, ChallengeVerdict(99, True))


class TestChallengeAdjudication:
    def test_candidate_beats_weaker_challenger(self):
        ctx = RecordingContext()
        node = TestNode(ctx, strength=Strength(5, 3))
        node.role = Role.CANDIDATE
        node.handle_challenge(1, Challenge(2, 9, token=7))
        port, verdict = ctx.sent[0]
        assert (port, verdict.token, verdict.won) == (1, 7, False)
        assert node.role is Role.CANDIDATE

    def test_candidate_loses_to_stronger_challenger_and_stalls(self):
        ctx = RecordingContext()
        node = TestNode(ctx, strength=Strength(1, 3))
        node.role = Role.CANDIDATE
        node.handle_challenge(1, Challenge(2, 9, token=7))
        assert ctx.sent[0][1].won is True
        assert node.role is Role.STALLED

    def test_self_challenge_always_wins(self):
        """An ownership chain can route a claim back to its issuer."""
        ctx = RecordingContext(node_id=9)
        node = TestNode(ctx, strength=Strength(1, 9))
        node.role = Role.CANDIDATE
        node.handle_challenge(1, Challenge(0, 9, token=3))
        assert ctx.sent[0][1].won is True
        assert node.role is Role.CANDIDATE  # not stalled by itself

    def test_captured_node_relays_and_echoes_the_original_token(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.claim(2, Strength(1, 5), "test")  # now captured, owner on port 2
        ctx.sent.clear()
        node.handle_challenge(4, Challenge(3, 8, token=42))
        port, relayed = ctx.sent[0]
        assert port == 2 and isinstance(relayed, Challenge)
        assert relayed.token != 42  # rewritten per-hop
        ctx.sent.clear()
        node.handle_verdict(2, ChallengeVerdict(relayed.token, True))
        port, verdict = ctx.sent[0]
        assert port == 4
        assert (verdict.token, verdict.won) == (42, True)

    def test_unowned_bystander_concedes(self):
        ctx = RecordingContext()
        node = TestNode(ctx)
        node.role = Role.CAPTURED  # captured but no owner recorded
        node.handle_challenge(1, Challenge(1, 5, token=0))
        assert ctx.sent[0][1].won is True
