"""Behavioural tests for Protocols B and C (Section 3)."""

from __future__ import annotations

import math

import pytest

from repro.adversary import wakeup
from repro.core.errors import ConfigurationError
from repro.protocols.sense.protocol_b import ProtocolB, doubling_distances
from repro.protocols.sense.protocol_c import ProtocolC, protocol_c_k
from repro.sim.delays import UniformDelay

from tests.conftest import elect_sense


class TestDoublingSchedule:
    def test_step_distances_match_the_paper(self):
        # N=16: step 1 -> {8}, step 2 -> {4, 12}, step 3 -> {2,6,10,14}
        assert doubling_distances(16, 1) == [8]
        assert doubling_distances(16, 2) == [4, 12]
        assert doubling_distances(16, 3) == [2, 6, 10, 14]
        assert doubling_distances(16, 4) == [1, 3, 5, 7, 9, 11, 13, 15]

    def test_all_steps_cover_every_distance_exactly_once(self):
        n = 64
        seen = []
        for step in range(1, 7):
            seen.extend(doubling_distances(n, step))
        assert sorted(seen) == list(range(1, n))

    def test_too_deep_a_step_rejected(self):
        with pytest.raises(ConfigurationError):
            doubling_distances(8, 4)


class TestProtocolB:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64])
    def test_elects_one_leader(self, n):
        elect_sense(ProtocolB(), n).verify()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError, match="power of two"):
            elect_sense(ProtocolB(), 12)

    def test_time_is_logarithmic(self):
        t64 = elect_sense(ProtocolB(), 64).election_time
        t512 = elect_sense(ProtocolB(), 512).election_time
        # doubling N three times adds a constant number of steps
        assert t512 - t64 <= 18

    def test_messages_are_n_log_n(self):
        per_nlogn = []
        for n in (16, 64, 256):
            msgs = elect_sense(ProtocolB(), n).messages_total
            per_nlogn.append(msgs / (n * math.log2(n)))
        assert max(per_nlogn) / min(per_nlogn) < 2.0

    def test_winner_captures_everyone(self):
        result = elect_sense(ProtocolB(), 16)
        steps = [s["steps_done"] for s in result.node_snapshots
                 if s["is_leader"]]
        assert steps == [4]


class TestProtocolCK:
    def test_k_formula(self):
        # N=16: r=4, ceil(log2 4)=2, k=4.  N=64: r=6, ceil(log2 6)=3, k=8.
        assert protocol_c_k(16) == 4
        assert protocol_c_k(64) == 8
        assert protocol_c_k(256) == 32

    def test_k_is_theta_n_over_log_n(self):
        for n in (16, 64, 256, 1024):
            k = protocol_c_k(n)
            assert n / (2 * math.log2(n)) <= k <= n / math.log2(n) * 2


class TestProtocolC:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 128])
    def test_elects_one_leader(self, n):
        elect_sense(ProtocolC(), n).verify()

    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16])
    def test_any_dividing_power_of_two_k_works(self, k):
        elect_sense(ProtocolC(k=k), 16).verify()

    def test_messages_stay_linear(self):
        per_node = []
        for n in (16, 64, 256):
            result = elect_sense(ProtocolC(), n)
            per_node.append(result.messages_total / n)
        assert max(per_node) / min(per_node) < 2.0

    def test_time_is_logarithmic(self):
        """time/log₂N stays in a narrow band (the constant is jumpy because
        the class size is 2^⌈log log N⌉, not log N exactly)."""
        ratios = [
            elect_sense(ProtocolC(), n).election_time / math.log2(n)
            for n in (32, 128, 512)
        ]
        assert max(ratios) / min(ratios) < 1.6
        assert max(ratios) < 8.0

    def test_chain_wakeup_does_not_break_c(self):
        """C's phase 1 is a contest among O(log N) class members, so the
        chain pattern cannot serialise the whole network."""
        result = elect_sense(
            ProtocolC(), 128, wakeup=wakeup.staggered_chain()
        )
        result.verify()
        assert result.election_time <= 60

    def test_correct_under_random_delays(self):
        for seed in range(5):
            result = elect_sense(
                ProtocolC(), 32, delays=UniformDelay(0.05, 1.0), seed=seed
            )
            result.verify()

    def test_single_base_node(self):
        result = elect_sense(ProtocolC(), 64, wakeup=wakeup.single_base(5))
        assert result.leader_id == 5
