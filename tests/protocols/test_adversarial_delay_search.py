"""Hypothesis as the asynchronous adversary.

The paper's adversary chooses message delays; here hypothesis plays that
role directly: it generates the latency sequence a run will consume, and
shrinking searches for a schedule that elects two leaders, loses liveness,
or breaks an invariant.  This is a much nastier adversary than any fixed
delay model — it is exactly the quantifier in "for every execution".
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.invariants import audit
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.delays import DelayModel
from repro.sim.network import Network
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


class ScriptedDelays(DelayModel):
    """Latencies consumed from a finite script, then cycled.

    Gaps are scripted too (every other value), so hypothesis controls both
    adversary dials of the Section 2 model.
    """

    def __init__(self, script: list[float]) -> None:
        if not script:
            raise ConfigurationError("need at least one scripted delay")
        self._script = script
        self._index = 0

    def _next(self) -> float:
        value = self._script[self._index % len(self._script)]
        self._index += 1
        return value

    def latency(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return min(1.0, max(0.01, self._next()))

    def gap(self, sender, receiver, message, send_time, rng):  # noqa: D102
        return min(1.0, max(0.0, self._next() - 0.5))


delay_scripts = st.lists(
    st.floats(min_value=0.0, max_value=1.5), min_size=1, max_size=64
)

ADVERSARIAL_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestScriptedDelaySearch:
    @ADVERSARIAL_SETTINGS
    @given(script=delay_scripts, n=st.integers(min_value=2, max_value=24))
    def test_protocol_a_safe_under_any_delay_script(self, script, n):
        result = Network(
            ProtocolA(),
            complete_with_sense_of_direction(n),
            delays=ScriptedDelays(script),
        ).run()
        result.verify()

    @ADVERSARIAL_SETTINGS
    @given(script=delay_scripts,
           r=st.integers(min_value=1, max_value=4))
    def test_protocol_c_safe_under_any_delay_script(self, script, r):
        n = 2**r
        result = Network(
            ProtocolC(),
            complete_with_sense_of_direction(n),
            delays=ScriptedDelays(script),
        ).run()
        result.verify()

    @ADVERSARIAL_SETTINGS
    @given(script=delay_scripts, n=st.integers(min_value=2, max_value=20),
           wiring=st.integers(min_value=0, max_value=10**6))
    def test_protocol_e_safe_under_any_delay_script(self, script, n, wiring):
        result = Network(
            ProtocolE(),
            complete_without_sense(n, seed=wiring),
            delays=ScriptedDelays(script),
        ).run()
        result.verify()

    @ADVERSARIAL_SETTINGS
    @given(script=delay_scripts, n=st.integers(min_value=6, max_value=20),
           k=st.integers(min_value=2, max_value=5),
           wiring=st.integers(min_value=0, max_value=10**6))
    def test_f_g_r_safe_under_any_delay_script(self, script, n, k, wiring):
        for factory in (ProtocolF, ProtocolG, ProtocolR):
            result = Network(
                factory(k=k),
                complete_without_sense(n, seed=wiring),
                delays=ScriptedDelays(script),
            ).run()
            result.verify()

    @ADVERSARIAL_SETTINGS
    @given(script=delay_scripts)
    def test_invariants_hold_under_scripted_delays(self, script):
        network = Network(
            ProtocolG(k=3),
            complete_without_sense(12, seed=3),
            delays=ScriptedDelays(script),
            trace=True,
        )
        result = network.run()
        audit(result)
