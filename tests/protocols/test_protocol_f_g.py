"""Behavioural tests for Protocols ℱ and 𝒢 (Section 4, Lemmas 4.1–4.3)."""

from __future__ import annotations

import pytest

from repro.adversary import wakeup
from repro.core.errors import ConfigurationError
from repro.protocols.nosense.protocol_f import ProtocolF, flood_threshold
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.sim.delays import UniformDelay

from tests.conftest import elect_nosense


class TestFloodThreshold:
    def test_threshold_is_ceil_n_over_k(self):
        assert flood_threshold(64, 8) == 8
        assert flood_threshold(64, 7) == 10
        assert flood_threshold(64, 64) == 1

    def test_threshold_clamped_to_n_minus_1(self):
        assert flood_threshold(4, 1) == 3


@pytest.mark.parametrize("protocol_cls", [ProtocolF, ProtocolG])
class TestElection:
    @pytest.mark.parametrize("n", [6, 8, 17, 64])
    def test_elects_one_leader(self, protocol_cls, n):
        elect_nosense(protocol_cls(), n).verify()

    @pytest.mark.parametrize("k", [2, 4, 8, 16])
    def test_whole_k_family_is_correct(self, protocol_cls, k):
        elect_nosense(protocol_cls(k=k), 32).verify()

    def test_correct_under_random_delays_and_wake_subsets(self, protocol_cls):
        for seed in range(6):
            elect_nosense(
                protocol_cls(k=5), 24, topo_seed=seed,
                delays=UniformDelay(0.05, 1.0), seed=seed,
                wakeup=wakeup.random_subset(8, window=5.0, seed_offset=seed),
            ).verify()


class TestTradeoffShape:
    def test_messages_grow_with_k(self):
        n = 64
        msgs = [
            elect_nosense(ProtocolF(k=k), n, topo_seed=2).messages_total
            for k in (2, 8, 32)
        ]
        assert msgs[0] < msgs[-1]

    def test_time_falls_with_k(self):
        n = 64
        times = [
            elect_nosense(ProtocolF(k=k), n, topo_seed=2).election_time
            for k in (2, 8, 32)
        ]
        assert times[-1] < times[0]

    def test_k_equal_n_degenerates_to_protocol_d_speed(self):
        result = elect_nosense(ProtocolF(k=64), 64, topo_seed=2)
        assert result.election_time <= 6.0


class TestChainRobustness:
    """Lemma 4.1 vs Lemma 4.3: ℱ needs clustered wake-ups, 𝒢 does not."""

    def test_g_beats_f_under_the_staggered_chain(self):
        n, k = 64, 8
        f = elect_nosense(
            ProtocolF(k=k), n, topo_seed=7, wakeup=wakeup.staggered_chain()
        )
        g = elect_nosense(
            ProtocolG(k=k), n, topo_seed=7, wakeup=wakeup.staggered_chain()
        )
        assert g.election_time < f.election_time

    def test_g_time_stays_near_n_over_k_under_the_chain(self):
        n, k = 128, 16
        g = elect_nosense(
            ProtocolG(k=k), n, topo_seed=7, wakeup=wakeup.staggered_chain()
        )
        assert g.election_time <= 4 * (n / k) + 12


class TestGPhases:
    def test_late_wakers_are_killed_by_finish(self):
        """A node waking after the first finishers must hear `finish` and
        never become a candidate in ℱ.  The wiring puts the late node on
        everyone's last port so no message reaches it before it wakes."""
        from repro.sim.network import run_election
        from repro.topology.complete import CompleteTopology

        n, k = 64, 4  # flood threshold N/k = 16 keeps conquest busy past t=6
        late = n - 1
        port_maps = []
        for p in range(n):
            others = [q for q in range(n) if q not in (p, late)]
            port_maps.append(others + [late] if p != late else list(range(n - 1)))
        topo = CompleteTopology(n, list(range(n)), port_maps,
                                sense_of_direction=False)
        schedule = {p: 0.0 for p in range(n - 1)}
        schedule[late] = 6.0  # after every first phase ends (≤ 5 time units)
        result = run_election(ProtocolG(k=k), topo, wakeup=schedule)
        result.verify()
        late_snap = result.node_snapshots[late]
        assert late_snap["is_base"]
        assert late_snap["first_finished"]
        assert late_snap["role"] in ("stalled", "captured")
        assert not late_snap["is_leader"]

    def test_single_base_node_succeeds_through_both_phases(self):
        result = elect_nosense(
            ProtocolG(k=4), 16, topo_seed=1, wakeup=wakeup.single_base(2)
        )
        assert result.leader_id == 2

    def test_g_requires_k_at_most_n_minus_1(self):
        with pytest.raises(ConfigurationError, match="k <= N-1"):
            elect_nosense(ProtocolG(k=16), 16)

    def test_first_phase_is_fast(self):
        """The paper: a base node finishes its first phase within 5 time
        units of waking.  The trace shows second_phase/killed entries early."""
        from repro.sim.network import Network
        from repro.topology.complete import complete_without_sense

        topo = complete_without_sense(16, seed=0)
        network = Network(ProtocolG(k=4), topo, trace=True)
        network.run()
        events = network.tracer.events
        wakes = {e.node: e.time for e in events if e.kind == "wake"}
        exits = [
            (e.node, e.time) for e in events
            if e.kind in ("second_phase", "killed_by_finish")
        ]
        assert exits, "someone must leave the first phase"
        for node, t in exits:
            assert t - wakes[node] <= 5.0
