"""Per-message-type accounting tests.

The complexity proofs charge each phase separately ("the first phase
requires O(N) messages since a node is captured at most once", "at most
O(N/k) candidates", ...).  These tests audit the per-type tallies the
metrics collector produces against those per-phase budgets — a much tighter
check than total counts.
"""

from __future__ import annotations

import math

import pytest

from repro.protocols.nosense.protocol_d import ProtocolD
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


class TestProtocolAAccounting:
    def test_phase_budgets(self):
        n = 64
        k = 8  # √N
        result = run_election(
            ProtocolA(k=k), complete_with_sense_of_direction(n)
        )
        by_type = result.messages_by_type
        # Phase 1: each capture accepted at most once per captured node.
        assert by_type.get("CaptureAccept", 0) <= n
        # Each candidate sends at most k owner messages; candidates that
        # reach phase 2 are at most N/k.
        assert by_type.get("Owner", 0) <= (n // k) * k
        # Elect volume: at most N/k candidates × N/k lattice nodes.
        assert by_type.get("Elect", 0) <= (n // k) ** 2
        # Forwarded contests are a constant per elect/owner message.
        assert by_type.get("Challenge", 0) <= 2 * (
            by_type.get("Elect", 0) + by_type.get("Owner", 0)
        )

    def test_request_reply_conservation(self):
        result = run_election(
            ProtocolA(), complete_with_sense_of_direction(32)
        )
        by_type = result.messages_by_type
        # Every capture gets exactly one response.
        assert by_type.get("Capture", 0) == (
            by_type.get("CaptureAccept", 0) + by_type.get("CaptureReject", 0)
        )
        # Every challenge gets exactly one verdict.
        assert by_type.get("Challenge", 0) == by_type.get("ChallengeVerdict", 0)


class TestProtocolCAccounting:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_phase_budgets(self, n):
        result = run_election(ProtocolC(), complete_with_sense_of_direction(n))
        by_type = result.messages_by_type
        # Phase 1 (lattice): each class member accepted at most once.
        assert by_type.get("LatticeAccept", 0) <= n
        # Phase 2 sweeps: the telescoping bound Σ k/2^(l-1) · 2^(l-1) ≤ k·log k
        # collapses to O(N); give it the paper's constant headroom.
        assert by_type.get("Sweep", 0) <= 2 * n
        assert by_type.get("OwnerUpdate", 0) <= n


class TestProtocolDAccounting:
    def test_exact_counts_with_all_base(self):
        n = 16
        result = run_election(ProtocolD(), complete_without_sense(n, seed=0))
        by_type = result.messages_by_type
        assert by_type["BroadcastElect"] == n * (n - 1)
        # every elect is answered: accepts + rejects == elects
        assert (
            by_type.get("BroadcastAccept", 0) + by_type.get("BroadcastReject", 0)
            == n * (n - 1)
        )
        # only smaller-id base nodes withhold... i.e. rejects come from
        # candidates with larger ids: each pair contributes exactly one.
        assert by_type.get("BroadcastReject", 0) == n * (n - 1) // 2


class TestProtocolEAccounting:
    def test_claims_are_answered_once_each(self):
        result = run_election(ProtocolE(), complete_without_sense(32, seed=3))
        by_type = result.messages_by_type
        assert by_type.get("SeqCapture", 0) == (
            by_type.get("SeqAccept", 0) + by_type.get("SeqReject", 0)
        )
        assert by_type.get("Challenge", 0) == by_type.get("ChallengeVerdict", 0)

    def test_winner_accounts_for_n_minus_1_accepts(self):
        n = 24
        result = run_election(
            ProtocolE(), complete_without_sense(n, seed=1), wakeup={5: 0.0}
        )
        assert result.messages_by_type["SeqAccept"] == n - 1


class TestProtocolFAccounting:
    def test_flood_volume_is_bounded_by_flooders(self):
        n, k = 64, 8
        result = run_election(
            ProtocolF(k=k), complete_without_sense(n, seed=2)
        )
        by_type = result.messages_by_type
        floods = by_type.get("FloodElect", 0)
        # at most k nodes reach level N/k (the paper's counting argument)
        assert floods <= k * (n - 1)
        assert floods % (n - 1) == 0  # whole broadcasts only


class TestBitBudget:
    @pytest.mark.parametrize(
        "factory,sense",
        [(ProtocolA, True), (ProtocolC, True), (ProtocolE, False)],
        ids=["A", "C", "E"],
    )
    def test_mean_message_size_is_o_log_n(self, factory, sense):
        for n in (16, 256):
            topo = (
                complete_with_sense_of_direction(n)
                if sense
                else complete_without_sense(n, seed=0)
            )
            result = run_election(factory(), topo)
            mean_bits = result.bits_total / result.messages_total
            assert mean_bits <= 8 + 4 * (math.log2(n) + 2)
