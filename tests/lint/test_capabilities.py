"""The linter-derived capability table and the ``--symmetry prune`` gate.

Pins the two acceptance criteria: (1) the checked-in table agrees with
the live derivation for every registered protocol, and the gate's
allow/deny decisions match the previous hand-maintained classification
(all fourteen of the paper's protocols compare identities, so prune was
— and stays — denied for every one of them); (2) the gate actually
*consults* the table rather than refusing unconditionally: an
id-oblivious fixture protocol is allowed through, and a stale table is a
hard conflict error.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.errors import ConfigurationError, ProtocolViolation
from repro.core.protocol import registered_protocols
from repro.lint.capabilities import (
    capability_for,
    derive_capability_table,
    load_packaged_table,
)
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import ensure_prune_sound, explore_protocol

#: The hand-maintained classification this table replaced (PR 3's prose
#: in ``verification/symmetry.py``): may ``--symmetry prune`` run?  Every
#: protocol resolves contests by identifier order, so the answer was
#: uniformly no.  Kept literal so a new protocol (or a refactor that
#: accidentally drops an id comparison) must consciously update BOTH
#: this dict and the regenerated capabilities.json.
HAND_CLASSIFICATION = {
    "A": False,
    "A'": False,
    "AG85": False,
    "B": False,
    "C": False,
    "CR": False,
    "D": False,
    "E": False,
    "F": False,
    "FT": False,
    "G": False,
    "HS": False,
    "LMW86": False,
    "R": False,
    # The randomized family breaks symmetry by coin flips, not id order:
    # syntactically equivariant (ranks are compared as opaque tuples), yet
    # prune stays denied because the per-node coin streams are seeded by
    # node identity (uses_ctx_rng) — relabelling changes the coins.
    "RS": False,
    "RT": False,
}

FIXTURE = Path(__file__).resolve().parents[1] / "fixtures/lint/equivariant_ok.py"


def _natural_topology(cls, n=4):
    if cls.needs_sense_of_direction:
        return complete_with_sense_of_direction(n)
    return complete_without_sense(n, seed=0)


def _load_fixture_protocol():
    name = "lint_fixture_equivariant_ok"
    if name in sys.modules:
        return sys.modules[name].SilentProtocol
    spec = importlib.util.spec_from_file_location(name, FIXTURE)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module.SilentProtocol


def test_registry_has_the_papers_fourteen_protocols():
    assert set(registered_protocols()) == set(HAND_CLASSIFICATION)


def test_packaged_table_matches_live_derivation():
    packaged = load_packaged_table()
    assert packaged is not None, "capabilities.json missing from package"
    assert packaged == derive_capability_table()


def test_gate_decisions_match_the_hand_classification():
    for name, cls in sorted(registered_protocols().items()):
        protocol = cls()
        try:
            ensure_prune_sound(protocol, _natural_topology(cls))
            allowed = True
        except ConfigurationError:
            allowed = False
        assert allowed == HAND_CLASSIFICATION[name], name


def test_every_registered_protocol_is_id_comparing():
    # The structural reason behind the uniform deny: each deterministic
    # protocol's implementation modules contain at least one RPL020 site,
    # and no-sense protocols additionally scan ports numerically.  The
    # randomized family is the exception that proves the gate consults
    # more than equivariance: RS/RT compare ranks as opaque tuples (no
    # RPL020 sites), yet stay denied through ``uses_ctx_rng``.
    for name, cls in sorted(registered_protocols().items()):
        capability = capability_for(cls)
        if capability.uses_ctx_rng:
            assert capability.rotation_equivariant, name
            continue
        assert capability.id_order_sites > 0, name
        assert not capability.rotation_equivariant, name
        assert not capability.relabelling_equivariant, name


def test_stale_table_is_a_conflict_error(monkeypatch):
    from repro.lint import capabilities as caps
    from repro.protocols.sense.protocol_a import ProtocolA

    stale = derive_capability_table()
    stale["protocols"]["A"]["id_order_sites"] = 0
    stale["protocols"]["A"]["rotation_equivariant"] = True
    monkeypatch.setattr(caps, "load_packaged_table", lambda: stale)
    with pytest.raises(ConfigurationError, match="stale"):
        ensure_prune_sound(ProtocolA(), complete_with_sense_of_direction(4))


def test_id_oblivious_protocol_passes_the_gate():
    protocol_cls = _load_fixture_protocol()
    capability = capability_for(protocol_cls)
    assert capability.id_order_sites == 0
    assert capability.port_scan_sites == 0
    assert capability.relabelling_equivariant
    # Not in the packaged table (unregistered), so the gate rides on the
    # live derivation alone — and lets it through.
    ensure_prune_sound(protocol_cls(), complete_with_sense_of_direction(3))


def test_gate_allows_prune_exploration_for_equivariant_protocol():
    # End to end: ``symmetry="prune"`` starts exploring (no
    # ConfigurationError) and it is the *protocol* that fails — a silent
    # protocol reaches quiescence with no leader.
    protocol_cls = _load_fixture_protocol()
    with pytest.raises(ProtocolViolation):
        explore_protocol(
            protocol_cls(),
            complete_with_sense_of_direction(3),
            symmetry="prune",
        )
