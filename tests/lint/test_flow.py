"""The interprocedural flow analyzer: lattice, RPL03x rules, capability
v2 consumers, and the runtime conformance probe.

Four contracts from the analyzer's acceptance criteria are pinned here:

1. every planted RPL03x fixture is caught with the documented code at
   the planted line, and the shipped protocol/app layers self-host clean
   under ``--flow``;
2. ``repro analyze`` derives a finite per-activation bound for all
   fourteen protocols, consistent with the paper's message table;
3. the v2 capability fields actually gate their consumers — timered
   protocols are refused by the sharded kernel, entropy-importing ones
   by the matrix loader and the orbit-prune gate;
4. the runtime probe refutes a static bound the code evades
   (``getattr(ctx, "se" + "nd")``), and confirms all fourteen shipped
   protocols within their bounds.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

import repro  # noqa: F401  (imports register every protocol)
from repro.core.errors import ConfigurationError
from repro.core.protocol import registered_protocols
from repro.lint import lint_paths
from repro.lint.flow import FanOut, analyze_protocol
from repro.lint.flow.cli import PAPER_MESSAGE_BOUNDS, is_consistent
from repro.lint.flow.conformance import probe_protocol_class

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"


def _load_fixture(stem: str):
    """Import one fixture module from tests/fixtures/lint by path."""
    name = f"lint_fixture_{stem}"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(
        name, FIXTURES / f"{stem}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestLattice:
    def test_constant_arithmetic(self):
        two = FanOut.constant(2)
        assert two.add(FanOut.constant(3)).describe() == "5"
        assert two.join(FanOut.constant(3)).describe() == "3"
        assert two.bound(10) == 2

    def test_linear_absorbs_constants(self):
        lin = FanOut.linear(1, 0)
        assert lin.describe() == "O(num_ports)"
        assert lin.add(FanOut.constant(3)).describe() == "O(num_ports)+3"
        # Join is the pointwise max (sound over both branches), so the
        # constant rides along as the linear term's offset.
        assert lin.join(FanOut.constant(100)).bound(7) == 107
        assert lin.add(lin).bound(7) == 14

    def test_loop_nesting_tops_out(self):
        lin = FanOut.linear(1, 0)
        assert lin.times(FanOut.constant(3)).bound(5) == 15
        assert lin.times(lin).is_top
        assert FanOut.top().bound(5) is None
        assert FanOut.zero().times(FanOut.top()).is_zero


class TestPlantedFixtures:
    def _flow_codes(self, stem):
        result = lint_paths([FIXTURES / f"{stem}.py"], flow=True)
        return [
            (f.code, f.line)
            for f in result.findings
            if f.code.startswith("RPL03")
        ]

    def test_amplification_cycle_is_rpl030(self):
        assert self._flow_codes("flow_amplification") == [("RPL030", 32)]

    def test_dead_and_shadowed_handlers_are_rpl031(self):
        assert self._flow_codes("flow_dead_handler") == [
            ("RPL031", 33),
            ("RPL031", 37),
        ]

    def test_unbounded_fanout_is_rpl032(self):
        assert self._flow_codes("flow_unbounded") == [("RPL032", 29)]

    def test_flow_pass_is_opt_in(self):
        # Without ``flow=True`` the same fixtures raise no RPL03x.
        for stem in ("flow_amplification", "flow_unbounded"):
            result = lint_paths([FIXTURES / f"{stem}.py"])
            assert not any(
                f.code.startswith("RPL03") for f in result.findings
            )


@pytest.mark.lint_smoke
class TestSelfHost:
    def test_shipped_layers_are_flow_clean(self):
        result = lint_paths(
            [REPO_ROOT / "src/repro/protocols", REPO_ROOT / "src/repro/apps"],
            flow=True,
        )
        assert result.ok, [str(f) for f in result.findings]

    def test_suppressed_equivariance_sites_survive_the_flow_pass(self):
        # flow=True must not eat the suppressed-but-counted RPL020/021
        # records the capability derivation feeds on.
        plain = lint_paths([REPO_ROOT / "src/repro/protocols"])
        flowed = lint_paths([REPO_ROOT / "src/repro/protocols"], flow=True)
        assert [f.code for f in flowed.suppressed] == [
            f.code for f in plain.suppressed
        ]


class TestAnalyzeBounds:
    def test_every_protocol_has_a_finite_consistent_bound(self):
        for name, cls in sorted(registered_protocols().items()):
            automaton = analyze_protocol(cls)
            assert automaton.max_fanout.is_finite, name
            assert is_consistent(automaton), name
            assert name in PAPER_MESSAGE_BOUNDS, name

    def test_constant_protocols_stay_constant(self):
        # The ring-style protocols forward O(1) messages per activation;
        # a LINEAR bound here would mean the analyzer lost precision.
        for name in ("AG85", "CR", "E", "HS"):
            automaton = analyze_protocol(registered_protocols()[name])
            assert automaton.max_fanout.bound(10_000) <= 2, name

    def test_analyze_cli_rejects_bad_usage(self, capsys):
        from repro.lint.flow.cli import main

        assert main(["--n", "1"]) == 2
        assert main(["--protocol", "nope"]) == 2
        capsys.readouterr()


class TestCapabilityConsumers:
    def test_shard_kernel_refuses_timered_protocols(self):
        from repro.sim.shard import ShardedNetwork
        from repro.topology.complete import complete_without_sense

        protocol = _load_fixture("flow_timered").TimeredProtocol()
        with pytest.raises(ConfigurationError, match="timer"):
            ShardedNetwork(
                protocol, complete_without_sense(8, seed=0), shards=2
            )

    def test_shard_kernel_refuses_rng_protocols(self):
        from repro.sim.shard import ShardedNetwork
        from repro.topology.complete import complete_without_sense

        protocol = _load_fixture("flow_rng").RngProtocol()
        with pytest.raises(ConfigurationError, match="uses_rng"):
            ShardedNetwork(
                protocol, complete_without_sense(8, seed=0), shards=2
            )

    def test_shard_kernel_accepts_every_registered_protocol(self):
        # The gate must be transparent for the shipped table: phase 5 of
        # check --all runs these sharded, so construction may not refuse.
        from repro.sim.shard import _refuse_unshardable_protocol

        for name, cls in sorted(registered_protocols().items()):
            _refuse_unshardable_protocol(cls())

    def test_matrix_loader_refuses_rng_protocols(self, monkeypatch):
        from repro.core.protocol import _REGISTRY
        from repro.matrix.spec import ScenarioSpec, validate_spec

        cls = _load_fixture("flow_rng").RngProtocol
        monkeypatch.setitem(_REGISTRY, cls.name, cls)
        spec = ScenarioSpec(
            tag="rng-row",
            protocols=(cls.name,),
            scenarios=("benign",),
            ns=(8,),
        )
        with pytest.raises(ConfigurationError, match="uses_rng"):
            validate_spec(spec)

    def test_prune_gate_refuses_rng_protocols(self):
        from repro.topology.complete import complete_without_sense
        from repro.verification import ensure_prune_sound

        protocol = _load_fixture("flow_rng").RngProtocol()
        with pytest.raises(ConfigurationError, match="uses_rng"):
            ensure_prune_sound(protocol, complete_without_sense(4, seed=0))

    def test_stale_v2_fields_are_a_conflict_error(self, monkeypatch):
        from repro.lint import capabilities as caps
        from repro.lint.capabilities import derive_capability_table
        from repro.protocols.sense.protocol_a import ProtocolA
        from repro.topology.complete import complete_with_sense_of_direction
        from repro.verification import ensure_prune_sound

        stale = derive_capability_table()
        stale["protocols"]["A"]["max_fanout"] = "1"
        monkeypatch.setattr(caps, "load_packaged_table", lambda: stale)
        with pytest.raises(ConfigurationError, match="stale"):
            ensure_prune_sound(
                ProtocolA(), complete_with_sense_of_direction(4)
            )

    def test_v1_table_degrades_to_v1_gating(self, monkeypatch, tmp_path):
        # A version-1 snapshot (no flow fields) must not read as stale:
        # the gate compares only the keys the snapshot has, and the
        # loader attaches a deprecation note for reports to surface.
        import json

        from repro.lint import capabilities as caps
        from repro.lint.capabilities import (
            derive_capability_table,
            load_packaged_table,
        )
        from repro.protocols.sense.protocol_a import ProtocolA
        from repro.topology.complete import complete_with_sense_of_direction
        from repro.verification import ensure_prune_sound

        v1 = json.loads(json.dumps(derive_capability_table()))
        v1["version"] = 1
        for entry in v1["protocols"].values():
            for key in (
                "uses_timers", "uses_rng", "max_fanout", "quiescent_kinds"
            ):
                del entry[key]
        monkeypatch.setattr(caps, "load_packaged_table", lambda: v1)
        # Not stale — the v1 keys agree; the refusal is the protocol's
        # own id-ordering sites, exactly as before v2.
        with pytest.raises(ConfigurationError, match="id-ordering"):
            ensure_prune_sound(
                ProtocolA(), complete_with_sense_of_direction(4)
            )

        snapshot = tmp_path / "capabilities.json"
        snapshot.write_text(json.dumps(v1))
        monkeypatch.setattr(caps, "packaged_table_path", lambda: snapshot)
        table = load_packaged_table()
        assert "deprecation" in table
        assert "regenerate" in table["deprecation"]

    def test_drift_check_exits_zero_when_current(self, capsys):
        from repro.lint.cli import check_capability_drift

        assert check_capability_drift() == 0
        assert "current" in capsys.readouterr().out

    def test_drift_check_exits_one_when_stale(self, monkeypatch, capsys):
        from repro.lint import capabilities as caps
        from repro.lint.capabilities import derive_capability_table
        from repro.lint.cli import check_capability_drift

        stale = derive_capability_table()
        stale["protocols"]["A"]["quiescent_kinds"] = []
        monkeypatch.setattr(caps, "load_packaged_table", lambda: stale)
        assert check_capability_drift() == 1
        err = capsys.readouterr().err
        assert "drifted: A" in err


class TestConformanceProbe:
    def test_every_registered_protocol_conforms(self):
        for name, cls in sorted(registered_protocols().items()):
            verdict = probe_protocol_class(cls)
            assert verdict["ok"], (name, verdict["violations"])
            assert verdict["measured_max"] <= verdict["static_bound"], name

    def test_obfuscated_send_is_caught_at_runtime(self):
        # The whole point of the probe: the analyzer sees fan-out 0
        # through ``getattr(ctx, "se" + "nd")``, the runtime counts 3.
        module = _load_fixture("flow_sneaky")
        automaton = analyze_protocol(module.SneakyProtocol)
        assert automaton.max_fanout.is_zero  # statically invisible

        verdict = probe_protocol_class(module.SneakyProtocol, n=4)
        assert not verdict["ok"]
        (violation,) = verdict["violations"]
        assert violation["trigger"] == "wake"
        assert violation["measured"] == 3
        assert violation["bound"] == 0
