"""Each rule family against its planted-violation fixture.

These pin the contract the acceptance criteria name: every family
catches its fixture with the documented codes, at the planted lines, and
no family bleeds into another family's fixture.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_paths

FIXTURES = "tests/fixtures/lint"

#: fixture stem -> exact multiset of expected codes.
EXPECTED = {
    "purity_bad": [
        "RPL001", "RPL002", "RPL003", "RPL003", "RPL004", "RPL004", "RPL005",
    ],
    "messages_bad": ["RPL010", "RPL011", "RPL012"],
    "equivariance_bad": ["RPL020", "RPL020", "RPL021"],
    "accounting_bad": ["RPL040", "RPL041", "RPL042"],
    # The RPL03x fixtures only trip with ``flow=True`` (exercised in
    # test_flow.py); under the default pass the dead-handler fixture's
    # never-sent Orphan class still trips the name-level message rule.
    "flow_amplification": [],
    "flow_dead_handler": ["RPL012"],
    "flow_unbounded": [],
    # The conformance fixtures are real (runnable) protocols, and the
    # name-level families see exactly what makes each one a fixture: the
    # sneaky broadcast hides its send (so only the id-contest RPL020
    # shows), the timered one reaches past the NodeContext API, and the
    # rng one imports and calls module-level entropy.
    "flow_sneaky": ["RPL020"],
    "flow_timered": ["RPL042"],
    "flow_rng": ["RPL003", "RPL004", "RPL011"],
}


@pytest.mark.parametrize("stem", sorted(EXPECTED))
def test_fixture_trips_exactly_its_family(stem):
    result = lint_paths([f"{FIXTURES}/{stem}.py"])
    assert sorted(f.code for f in result.findings) == sorted(EXPECTED[stem])
    assert not result.suppressed


def test_fixture_findings_sit_on_the_marked_lines():
    result = lint_paths([f"{FIXTURES}/accounting_bad.py"])
    by_code = {f.code: f for f in result.findings}
    source = open(f"{FIXTURES}/accounting_bad.py").read().splitlines()
    for code, finding in by_code.items():
        assert code in source[finding.line - 1], (code, finding.line)


def test_equivariant_fixture_is_clean():
    result = lint_paths([f"{FIXTURES}/equivariant_ok.py"])
    assert result.ok
    assert not result.suppressed


def test_whole_fixture_directory_unions_flow_graph():
    # Linting the directory at once must not create cross-fixture
    # false positives (the send/handle union is run-wide by design).
    result = lint_paths([FIXTURES])
    expected = sorted(sum(EXPECTED.values(), []))
    assert sorted(f.code for f in result.findings) == expected


def test_sent_in_one_module_handled_in_another_is_clean(tmp_path):
    # The layering that motivated the run-wide union: capture_base
    # constructs a message that only concrete protocol modules match.
    (tmp_path / "base.py").write_text(
        "from dataclasses import dataclass\n"
        "from repro.core.messages import Message\n\n\n"
        "@dataclass(frozen=True, slots=True)\n"
        "class Probe(Message):\n"
        "    pass\n\n\n"
        "def fire(ctx):\n"
        "    ctx.send(0, Probe())\n"
    )
    (tmp_path / "concrete.py").write_text(
        "def absorb(message):\n"
        "    match message:\n"
        "        case Probe():\n"
        "            return True\n"
        "    return False\n"
    )
    both = lint_paths([tmp_path])
    assert both.ok
    alone = lint_paths([tmp_path / "base.py"])
    assert [f.code for f in alone.findings] == ["RPL011"]
