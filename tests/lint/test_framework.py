"""The rule framework itself: spans, suppressions, select/ignore, sorting."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import ModuleContext, RULES, lint_paths
from repro.lint.core import iter_python_files

FIXTURES = "tests/fixtures/lint"


def _write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


def test_every_rule_code_is_stable_and_documented():
    # The catalogue the docs and JSON schema promise: five families,
    # each code of the form RPL0xx, each with a non-empty summary.
    assert set(RULES) == {
        "RPL001", "RPL002", "RPL003", "RPL004", "RPL005",
        "RPL010", "RPL011", "RPL012",
        "RPL020", "RPL021",
        "RPL030", "RPL031", "RPL032",
        "RPL040", "RPL041", "RPL042",
    }
    assert {r.family for r in RULES.values()} == {
        "purity", "messages", "equivariance", "flow", "accounting"
    }
    assert all(r.summary for r in RULES.values())


def test_findings_carry_one_based_spans(tmp_path):
    path = _write(
        tmp_path,
        "spans.py",
        """\
        import random
        """,
    )
    result = lint_paths([path])
    (finding,) = result.findings
    assert finding.code == "RPL003"
    assert (finding.line, finding.col) == (1, 1)
    assert (finding.end_line, finding.end_col) == (1, 14)


def test_same_line_suppression_silences_and_records_reason(tmp_path):
    path = _write(
        tmp_path,
        "same_line.py",
        """\
        import random  # repro: lint-ok[RPL003] seeded off-path tooling
        """,
    )
    result = lint_paths([path])
    assert result.findings == []
    (suppressed,) = result.suppressed
    assert suppressed.code == "RPL003"
    assert suppressed.suppression_reason == "seeded off-path tooling"


def test_preceding_comment_block_suppression_covers_next_code_line(tmp_path):
    path = _write(
        tmp_path,
        "block.py",
        """\
        # repro: lint-ok[RPL003] long justification that needs
        # a second comment line before the statement
        import random
        """,
    )
    result = lint_paths([path])
    assert result.findings == []
    assert [f.code for f in result.suppressed] == ["RPL003"]


def test_suppression_does_not_leak_past_intervening_code(tmp_path):
    path = _write(
        tmp_path,
        "leak.py",
        """\
        import time  # repro: lint-ok[RPL003] acknowledged
        x = 1
        import random
        """,
    )
    result = lint_paths([path])
    # A code line between the comment and the second import cuts the
    # coverage: the second violation stays loud.
    assert [f.code for f in result.findings] == ["RPL003"]
    assert result.findings[0].line == 3


def test_comma_list_suppression_matches_partially(tmp_path):
    # ``time`` trips RPL003 only; the comma list names RPL003 among
    # others, so it still matches — but only the named codes are eaten:
    # the call-site RPL004 below stays loud.
    path = _write(
        tmp_path,
        "comma.py",
        """\
        import time  # repro: lint-ok[RPL003, RPL005] wall-clock shim
        import random  # repro: lint-ok[RPL003] seeded

        def f():
            return random.random()
        """,
    )
    result = lint_paths([path])
    assert [f.code for f in result.findings] == ["RPL004"]
    assert sorted(f.code for f in result.suppressed) == ["RPL003", "RPL003"]


def test_lint_ok_on_a_suppressed_line_does_not_double_count(tmp_path):
    # One comment, one finding: the suppression applies once and the
    # record keeps the single reason (no phantom duplicate from the
    # next-line window overlapping the same-line window).
    path = _write(
        tmp_path,
        "once.py",
        """\
        # repro: lint-ok[RPL003] justified above
        import random  # repro: lint-ok[RPL003] justified inline
        """,
    )
    result = lint_paths([path])
    assert result.findings == []
    (suppressed,) = result.suppressed
    assert suppressed.suppression_reason == "justified inline"


def test_multi_line_reason_inside_a_decorated_method(tmp_path):
    # A justification spanning comment lines directly above the
    # offending statement, inside a method that carries a decorator:
    # neither the continuation lines nor the decorator break the
    # coverage window, and the full reason is the last comment line's.
    path = _write(
        tmp_path,
        "decorated.py",
        """\
        TALLY = {}


        def traced(fn):
            return fn


        class CountingNode(Node):
            @traced
            def on_wake(self, spontaneous):
                # repro: lint-ok[RPL001] the tally is measurement
                # plumbing, flushed by the harness between runs
                TALLY["wakes"] = TALLY.get("wakes", 0) + 1
        """,
    )
    result = lint_paths([path])
    assert result.findings == []
    (suppressed,) = result.suppressed
    assert suppressed.code == "RPL001"
    assert suppressed.suppression_reason == "the tally is measurement"


def test_suppression_is_code_specific(tmp_path):
    path = _write(
        tmp_path,
        "wrong_code.py",
        """\
        import random  # repro: lint-ok[RPL004] wrong code listed
        """,
    )
    result = lint_paths([path])
    assert [f.code for f in result.findings] == ["RPL003"]


def test_select_and_ignore_filter_codes():
    target = f"{FIXTURES}/purity_bad.py"
    everything = lint_paths([target])
    assert len(everything.findings) > 1
    only_imports = lint_paths([target], select=["RPL003"])
    assert {f.code for f in only_imports.findings} == {"RPL003"}
    without = lint_paths([target], ignore=["RPL003", "RPL004"])
    assert "RPL003" not in {f.code for f in without.findings}
    assert "RPL004" not in {f.code for f in without.findings}


def test_unknown_codes_are_rejected():
    with pytest.raises(ValueError, match="RPL999"):
        lint_paths([f"{FIXTURES}/purity_bad.py"], select=["RPL999"])


def test_findings_are_sorted_by_path_line_col_code():
    result = lint_paths([FIXTURES])
    keys = [f.sort_key for f in result.findings]
    assert keys == sorted(keys)


def test_iter_python_files_rejects_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([tmp_path / "nope.txt"])
