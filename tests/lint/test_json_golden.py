"""The machine-readable reporters are stable contracts: golden tests.

``tests/fixtures/lint/golden_report.json`` is the checked-in output of
``python -m repro lint --format json tests/fixtures/lint/accounting_bad.py``
run from the repository root, and ``golden_report.sarif`` the same for
``--format sarif``.  Ordering, schema keys, 1-based columns and POSIX
relative paths are all part of the contract; bump
``JSON_SCHEMA_VERSION`` (or the SARIF version) and regenerate the
goldens on any change.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint import lint_paths, render_json, render_sarif
from repro.lint.reporters import JSON_SCHEMA_VERSION, SARIF_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = "tests/fixtures/lint/accounting_bad.py"
GOLDEN = REPO_ROOT / "tests/fixtures/lint/golden_report.json"
GOLDEN_SARIF = REPO_ROOT / "tests/fixtures/lint/golden_report.sarif"


def _render(monkeypatch) -> str:
    monkeypatch.chdir(REPO_ROOT)
    return render_json(lint_paths([FIXTURE]))


def test_json_report_matches_golden_byte_for_byte(monkeypatch):
    assert _render(monkeypatch) == GOLDEN.read_text()


def test_json_schema_shape(monkeypatch):
    payload = json.loads(_render(monkeypatch))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["checked_files"] == 1
    assert [f["code"] for f in payload["findings"]] == [
        "RPL040", "RPL041", "RPL042",
    ]
    for finding in payload["findings"]:
        assert set(finding) == {
            "code", "rule", "family", "path", "line", "col",
            "end_line", "end_col", "message",
        }
        assert finding["path"] == FIXTURE  # POSIX, repo-root-relative
        assert finding["line"] >= 1 and finding["col"] >= 1
    assert payload["counts"] == {"RPL040": 1, "RPL041": 1, "RPL042": 1}
    assert payload["suppressed"] == []


def test_findings_sorted_within_json(monkeypatch):
    payload = json.loads(_render(monkeypatch))
    keys = [
        (f["path"], f["line"], f["col"], f["code"])
        for f in payload["findings"]
    ]
    assert keys == sorted(keys)


def test_sarif_report_matches_golden_byte_for_byte(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    rendered = render_sarif(lint_paths([FIXTURE]))
    assert rendered == GOLDEN_SARIF.read_text()


def test_sarif_schema_shape(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    payload = json.loads(render_sarif(lint_paths([FIXTURE])))
    assert payload["version"] == SARIF_VERSION
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    # Only the rules actually used appear, each with its family.
    assert [r["id"] for r in driver["rules"]] == [
        "RPL040", "RPL041", "RPL042",
    ]
    for rule in driver["rules"]:
        assert rule["properties"]["family"] == "accounting"
    assert [r["ruleId"] for r in run["results"]] == [
        "RPL040", "RPL041", "RPL042",
    ]
    for result in run["results"]:
        assert result["level"] == "error"
        (location,) = result["locations"]
        artifact = location["physicalLocation"]["artifactLocation"]
        assert artifact["uri"] == FIXTURE  # POSIX, repo-root-relative
        assert artifact["uriBaseId"] == "%SRCROOT%"
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_sarif_suppressed_findings_become_notes(tmp_path):
    path = tmp_path / "suppressed.py"
    path.write_text(
        textwrap.dedent(
            """\
            import random  # repro: lint-ok[RPL003] seeded tooling only
            """
        )
    )
    payload = json.loads(render_sarif(lint_paths([path])))
    (result,) = payload["runs"][0]["results"]
    assert result["ruleId"] == "RPL003"
    assert result["level"] == "note"
    (suppression,) = result["suppressions"]
    assert suppression["kind"] == "inSource"
    assert suppression["justification"] == "seeded tooling only"
