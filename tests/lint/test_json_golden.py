"""The JSON reporter is a stable contract: byte-for-byte golden test.

``tests/fixtures/lint/golden_report.json`` is the checked-in output of
``python -m repro lint --format json tests/fixtures/lint/accounting_bad.py``
run from the repository root.  Ordering, schema keys, 1-based columns
and POSIX relative paths are all part of the contract; bump
``JSON_SCHEMA_VERSION`` and regenerate the golden on any change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint import lint_paths, render_json
from repro.lint.reporters import JSON_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = "tests/fixtures/lint/accounting_bad.py"
GOLDEN = REPO_ROOT / "tests/fixtures/lint/golden_report.json"


def _render(monkeypatch) -> str:
    monkeypatch.chdir(REPO_ROOT)
    return render_json(lint_paths([FIXTURE]))


def test_json_report_matches_golden_byte_for_byte(monkeypatch):
    assert _render(monkeypatch) == GOLDEN.read_text()


def test_json_schema_shape(monkeypatch):
    payload = json.loads(_render(monkeypatch))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["tool"] == "repro-lint"
    assert payload["checked_files"] == 1
    assert [f["code"] for f in payload["findings"]] == [
        "RPL040", "RPL041", "RPL042",
    ]
    for finding in payload["findings"]:
        assert set(finding) == {
            "code", "rule", "family", "path", "line", "col",
            "end_line", "end_col", "message",
        }
        assert finding["path"] == FIXTURE  # POSIX, repo-root-relative
        assert finding["line"] >= 1 and finding["col"] >= 1
    assert payload["counts"] == {"RPL040": 1, "RPL041": 1, "RPL042": 1}
    assert payload["suppressed"] == []


def test_findings_sorted_within_json(monkeypatch):
    payload = json.loads(_render(monkeypatch))
    keys = [
        (f["path"], f["line"], f["col"], f["code"])
        for f in payload["findings"]
    ]
    assert keys == sorted(keys)
