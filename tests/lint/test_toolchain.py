"""Third-party toolchain gates: ruff and mypy, when the dev extra is in.

The container the tier-1 suite usually runs in does not ship ruff/mypy
(they are dev-extra, not runtime, dependencies), so these tests skip
cleanly when the tools are absent and enforce a clean run when present.
The configuration they exercise lives in ``pyproject.toml``.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(
    shutil.which("ruff") is None, reason="ruff not installed (dev extra)"
)
def test_ruff_check_is_clean():
    proc = subprocess.run(
        ["ruff", "check", "src/repro", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (dev extra)"
)
def test_mypy_is_clean():
    proc = subprocess.run(
        ["mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_py_typed_marker_ships():
    assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()


def test_capabilities_json_ships_as_package_data():
    # Declared in [tool.setuptools.package-data]; the gate reads it via
    # the package, so it must live inside src/repro.
    from repro.lint.capabilities import packaged_table_path

    path = packaged_table_path()
    assert path.exists()
    assert REPO_ROOT / "src" in path.parents
