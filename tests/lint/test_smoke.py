"""Tier-1 ``lint_smoke`` slice: the repo self-hosts its own linter.

``python -m repro lint`` must exit 0 over the shipped protocol and app
layers (every remaining finding is consciously suppressed with a
reason), and exit non-zero with the documented codes on each planted
fixture.  One test goes through a real subprocess so the module
entry-point wiring is covered too.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "lint"

pytestmark = pytest.mark.lint_smoke


def test_self_hosted_lint_is_clean(capsys):
    assert cli_main(
        ["lint",
         str(REPO_ROOT / "src" / "repro" / "protocols"),
         str(REPO_ROOT / "src" / "repro" / "apps")]
    ) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean:")


def test_self_hosted_suppressions_all_carry_reasons():
    from repro.lint import lint_paths

    result = lint_paths(
        [REPO_ROOT / "src/repro/protocols", REPO_ROOT / "src/repro/apps"]
    )
    assert result.ok
    assert result.suppressed, "the paper's protocols have acknowledged sites"
    for finding in result.suppressed:
        assert finding.suppression_reason, finding


@pytest.mark.parametrize(
    ("stem", "codes"),
    [
        ("purity_bad", {"RPL001", "RPL002", "RPL003", "RPL004", "RPL005"}),
        ("messages_bad", {"RPL010", "RPL011", "RPL012"}),
        ("equivariance_bad", {"RPL020", "RPL021"}),
        ("accounting_bad", {"RPL040", "RPL041", "RPL042"}),
    ],
)
def test_planted_fixture_fails_with_expected_codes(stem, codes, capsys):
    rc = cli_main(
        ["lint", "--format", "json", str(FIXTURES / f"{stem}.py")]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert {f["code"] for f in payload["findings"]} == codes


def test_module_entry_point_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint",
         "src/repro/protocols", "src/repro/apps"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean:" in proc.stdout


def test_capabilities_flag_emits_the_table(capsys):
    assert cli_main(["lint", "--capabilities"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["protocols"]) == 16


def test_list_rules_names_every_family(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for family in (
        "purity", "messages", "equivariance", "flow", "accounting"
    ):
        assert family in out


def test_self_hosted_flow_analysis_is_clean(capsys):
    # The interprocedural pass (RPL03x) over the same shipped layers:
    # no amplification cycles, no dead handlers, no unbounded fan-out.
    assert cli_main(
        ["lint", "--flow",
         str(REPO_ROOT / "src" / "repro" / "protocols"),
         str(REPO_ROOT / "src" / "repro" / "apps")]
    ) == 0
    assert capsys.readouterr().out.startswith("clean:")


def test_self_hosted_analyze_derives_finite_bounds(capsys):
    assert cli_main(["analyze", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["protocols"]) == 16
    assert payload["consistent"]
    for row in payload["protocols"].values():
        assert row["bound_at_n"] is not None, row
