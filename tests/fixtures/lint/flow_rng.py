"""A protocol whose module imports entropy sources (``uses_rng``).

Module-level ``random``/``secrets``/``uuid`` escape the seeded
simulation RNG, so the flow analysis marks the protocol ``uses_rng`` and
the deterministic pipelines refuse it: matrix rows at load time
(:func:`repro.matrix.spec._ensure_deterministic_capability`), orbit
pruning at gate time
(:func:`repro.verification.symmetry.ensure_prune_sound`), and the
sharded kernel at construction time.
"""

import random

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol


@dataclass(frozen=True, slots=True)
class Coin(Message):
    face: int


class RngNode(Node):
    def on_wake(self, spontaneous: bool) -> None:
        self.ctx.send(0, Coin(random.getrandbits(1)))

    def on_message(self, port: int, message: Message) -> None:
        pass


class RngProtocol(ElectionProtocol):
    name = "flow-rng-fixture"

    def create_node(self, ctx: NodeContext) -> RngNode:
        return RngNode(ctx)
