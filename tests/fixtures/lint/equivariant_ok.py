"""A deliberately id-oblivious fixture protocol: zero RPL020/RPL021 sites.

Loaded (not just parsed) by the capability tests: the linter derives
``relabelling_equivariant=True`` for it, so it is the one protocol the
``--symmetry prune`` gate *allows* — proving the gate decides from the
capability table rather than refusing unconditionally.  The protocol
does nothing, so exploring it trips the no-leader check; the tests use
that ProtocolViolation as evidence the gate let exploration start.
"""

from __future__ import annotations

from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol


class SilentNode(Node):
    def on_wake(self, spontaneous: bool) -> None:
        return None

    def on_message(self, port: int, message: Message) -> None:
        return None


class SilentProtocol(ElectionProtocol):
    name = "FIXTURE-SILENT"

    def create_node(self, ctx: NodeContext) -> SilentNode:
        return SilentNode(ctx)
