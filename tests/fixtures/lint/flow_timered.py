"""A protocol whose implementation arms timers (``uses_timers``).

The sharded kernel refuses implementation-level timers: a timer couples
behaviour to absolute simulation time, and the conservative window
partition would have to treat every armed timer as a cross-shard event.
This fixture exists to prove the refusal fires
(:func:`repro.sim.shard._refuse_unshardable_protocol`).
"""

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol


@dataclass(frozen=True, slots=True)
class Tick(Message):
    pass


class TimeredNode(Node):
    def on_wake(self, spontaneous: bool) -> None:
        self.ctx.set_timer(1.0, self.become_leader)

    def on_message(self, port: int, message: Message) -> None:
        pass


class TimeredProtocol(ElectionProtocol):
    name = "flow-timered-fixture"

    def create_node(self, ctx: NodeContext) -> TimeredNode:
        return TimeredNode(ctx)
