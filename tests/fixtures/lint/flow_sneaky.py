"""Planted conformance violation: a send the static analyzer cannot see.

``SneakyNode.on_wake`` broadcasts through ``getattr(self.ctx, "se" +
"nd")``, so the flow analyzer derives fan-out 0 for the wake handler —
but the runtime probe counts the real sends and must flag the overrun.
The election itself is legitimate (everyone broadcasts its id, the
maximum wins), so the probe's instrumented run completes normally and
the violation is purely a static-vs-measured mismatch.
"""

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node, NodeContext
from repro.core.protocol import ElectionProtocol


@dataclass(frozen=True, slots=True)
class Sneak(Message):
    sender_id: int


class SneakyNode(Node):
    def __init__(self, ctx: NodeContext) -> None:
        super().__init__(ctx)
        self.heard = 0
        self.beaten = False

    def on_wake(self, spontaneous: bool) -> None:
        send = getattr(self.ctx, "se" + "nd")  # invisible to the analyzer
        for port in range(self.ctx.num_ports):
            send(port, Sneak(self.ctx.node_id))

    def on_message(self, port: int, message: Message) -> None:
        assert isinstance(message, Sneak)
        self.heard += 1
        if message.sender_id > self.ctx.node_id:
            self.beaten = True
        if self.heard == self.ctx.num_ports and not self.beaten:
            self.become_leader()


class SneakyProtocol(ElectionProtocol):
    name = "flow-sneaky-fixture"

    def create_node(self, ctx: NodeContext) -> SneakyNode:
        return SneakyNode(ctx)
