"""Planted dead handler surface (RPL031).

Never imported by tests — only parsed by ``lint --flow``.  ``Stray``
has a dispatch arm but nothing in the analyzed universe constructs one,
so the arm can never run; the second ``Ping`` arm repeats an earlier
unguarded pattern and is shadowed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node


@dataclass(frozen=True, slots=True)
class Ping(Message):
    pass


@dataclass(frozen=True, slots=True)
class Stray(Message):
    pass


class DeadHandlerNode(Node):
    def on_wake(self) -> None:
        self.ctx.send(0, Ping())

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Stray():  # dead: no send site constructs Stray
                self.ctx.send(port, Ping())
            case Ping():
                pass
            case Ping():  # unreachable: shadowed by the arm above
                self.ctx.send(port, Ping())
