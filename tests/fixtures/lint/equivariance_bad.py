"""Planted equivariance violations (RPL020–RPL021).

Never imported by tests — only parsed by the linter.  Identifier
arithmetic and an identifier order comparison (RPL020) plus a sequential
port cursor (RPL021); everything else (messages, sends) is clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node


@dataclass(frozen=True, slots=True)
class Parity(Message):
    cand: int


class ParityNode(Node):
    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._next_port = 0

    def on_wake(self, spontaneous: bool) -> None:
        if self.ctx.node_id % 2:  # RPL020: identifier arithmetic
            self.ctx.send(0, Parity(self.ctx.node_id))

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Parity():
                if message.cand > self.ctx.node_id:  # RPL020: id order
                    self._next_port += 1  # RPL021: port cursor
