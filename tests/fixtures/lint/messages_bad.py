"""Planted message-hygiene violations (RPL010–RPL012).

Never imported by tests — only parsed by the linter.  ``Mutable`` is a
bare dataclass (RPL010), ``Orphan`` is constructed-and-sent but matched
nowhere (RPL011), ``Ghost`` has a match arm but no constructor call ever
produces one (RPL012).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message


@dataclass
class Mutable(Message):  # RPL010: not frozen, not slotted
    value: int


@dataclass(frozen=True, slots=True)
class Orphan(Message):  # RPL011: sent below, handled nowhere
    pass


@dataclass(frozen=True, slots=True)
class Ghost(Message):  # RPL012: handled below, sent nowhere
    pass


def emit(ctx) -> None:
    ctx.send(0, Orphan())


def consume(message) -> bool:
    match message:
        case Ghost():
            return True
    return False
