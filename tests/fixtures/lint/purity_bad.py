"""Planted purity/determinism violations (RPL001–RPL005).

Never imported by tests — only parsed by the linter.  Every violation is
marked with the code it must produce; the message class is deliberately
clean (frozen, slotted, sent and handled) so this fixture trips *only*
the purity family.
"""

from __future__ import annotations

import random  # RPL003: forbidden import
import time  # RPL003: forbidden import
from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node

TALLY = {"wakes": 0}


@dataclass(frozen=True, slots=True)
class Ping(Message):
    payload: int


class ImpureNode(Node):
    seen: list = []

    def on_wake(self, spontaneous: bool) -> None:
        TALLY["wakes"] += 1  # RPL001: writes module-level state
        ImpureNode.seen.append(self.ctx.node_id)  # RPL002: class state
        delay = time.time()  # RPL004: wall clock
        self.ctx.send(random.randrange(2), Ping(int(delay)))  # RPL004

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Ping():
                for item in {3, 1, 2}:  # RPL005: set iteration
                    self.ctx.trace("saw", item=item)
