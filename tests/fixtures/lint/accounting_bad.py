"""Planted accounting violations (RPL040–RPL042).

Never imported by tests — only parsed by the linter.  One layer import,
one send that bypasses the context, one reach into private simulator
state through the context.  Exactly three findings: this file is also
the golden-report fixture for the JSON reporter, so do not add or move
violations without regenerating ``tests/fixtures/lint/golden_report.json``.
"""

from __future__ import annotations

from repro.sim.network import Network  # RPL040: layer import


def smuggle(links, ctx) -> None:
    links.send(0, object())  # RPL041: send bypasses ctx
    ctx._network.push(1)  # RPL042: private simulator state via ctx
