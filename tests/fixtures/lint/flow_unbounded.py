"""Planted unbounded fan-out (RPL032).

Never imported by tests — only parsed by ``lint --flow``.  The send
sits in a ``while True`` loop, so no static per-activation bound exists
and the runtime conformance probe could never check it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node


@dataclass(frozen=True, slots=True)
class Flood(Message):
    pass


class UnboundedNode(Node):
    def on_wake(self) -> None:
        self.ctx.send(0, Flood())

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Flood():
                while True:
                    self.ctx.send(0, Flood())
