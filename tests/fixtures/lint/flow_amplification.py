"""Planted amplification cycle (RPL030).

Never imported by tests — only parsed by ``lint --flow``.  Every
``Spawn`` delivery *unconditionally* sends two more ``Spawn`` messages:
the must-send kind graph has the self-loop ``Spawn -> Spawn`` with
fan-out 2, so the message population doubles per round — a statically
provable explosion.  Contrast with the real contest ladders
(``capture_base``), where every bounce has a losing branch that sends
nothing, keeping the guaranteed per-traversal fan-out at 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.messages import Message
from repro.core.node import Node


@dataclass(frozen=True, slots=True)
class Spawn(Message):
    pass


class AmplifierNode(Node):
    def on_wake(self) -> None:
        self.ctx.send(0, Spawn())

    def on_message(self, port: int, message: Message) -> None:
        match message:
            case Spawn():
                self.ctx.send(0, Spawn())
                self.ctx.send(1, Spawn())
