"""Legacy setup shim.

The execution environment has no network access and an older setuptools
without the ``wheel`` package, so PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``.  This shim lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
