"""Benchmark E11: the asynchrony penalty (sync O(log N) rounds vs
async Ω(N/log N) time — the paper's N/(log N)² speed loss).

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e11_asynchrony_penalty

from conftest import run_experiment


def test_e11_asynchrony_penalty(benchmark):
    run_experiment(benchmark, e11_asynchrony_penalty, QUICK)
