"""Benchmark E01: Figure 1 — the 6-node sense-of-direction network, validated at scale.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e1_figure1

from conftest import run_experiment


def test_e01_figure1(benchmark):
    run_experiment(benchmark, e1_figure1, QUICK)
