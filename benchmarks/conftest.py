"""Shared helpers for the benchmark suite.

Each experiment benchmark runs its full sweep exactly once inside
``benchmark.pedantic`` (the sweeps are the measurement; re-running them
dozens of times would only slow the suite), asserts every paper-shape
check, and attaches the headline findings to the benchmark's ``extra_info``
so they appear in ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations


def run_experiment(benchmark, experiment, scale):
    """Run one experiment under pytest-benchmark and assert its checks."""
    report = benchmark.pedantic(experiment, args=(scale,), rounds=1, iterations=1)
    for key, value in report.findings:
        benchmark.extra_info[key] = str(value)[:120]
    report.raise_if_failed()
    return report
