"""Shared helpers for the benchmark suite.

Each experiment benchmark runs its full sweep exactly once inside
``benchmark.pedantic`` (the sweeps are the measurement; re-running them
dozens of times would only slow the suite), asserts every paper-shape
check, and attaches the headline findings to the benchmark's ``extra_info``
so they appear in ``pytest benchmarks/ --benchmark-only`` output.

The BENCH snapshot writers share one serialisation
(:func:`canonical_bench_text` / :func:`write_bench`): committed
``BENCH_*.json`` files must be byte-stable for a given payload, because
the CI trend gate (``python -m repro trends``) diffs them against their
merge-base versions and review diffs should only ever show real metric
movement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def run_experiment(benchmark, experiment, scale):
    """Run one experiment under pytest-benchmark and assert its checks."""
    report = benchmark.pedantic(experiment, args=(scale,), rounds=1, iterations=1)
    for key, value in report.findings:
        benchmark.extra_info[key] = str(value)[:120]
    report.raise_if_failed()
    return report


def canonical_bench_text(payload: dict[str, Any]) -> str:
    """The one true BENCH serialisation (stable keys, trailing newline)."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def write_bench(path: Path, payload: dict[str, Any]) -> None:
    """Write one BENCH snapshot in the canonical serialisation."""
    path.write_text(canonical_bench_text(payload))
