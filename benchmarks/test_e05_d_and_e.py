"""Benchmark E05: E5 — protocols D and ℰ, plus the forwarding-congestion duel vs AG85.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e5_d_and_e

from conftest import run_experiment


def test_e05_d_and_e(benchmark):
    run_experiment(benchmark, e5_d_and_e, QUICK)
