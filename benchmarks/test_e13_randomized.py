"""Benchmark E13: the deterministic-vs-randomized tradeoff curves.

Regenerates the randomized family's sublinearity evidence (message
growth exponents against Protocol B's n log n, whp success rate, the
RT-buys-messages-with-time ordering), asserts every check, and writes
the curves to ``BENCH_random.json`` at the repo root.  The trend gate
(``python -m repro trends``) tracks the exponents (lower is better —
more sublinear) and the whp success rate (higher is better) against the
merge-base snapshot.
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.experiments import QUICK, e13_randomized_sublinear

from conftest import run_experiment, write_bench

BENCH_PATH = Path(__file__).parent.parent / "BENCH_random.json"


def test_e13_randomized_sublinear(benchmark):
    report = run_experiment(benchmark, e13_randomized_sublinear, QUICK)
    write_bench(BENCH_PATH, report.to_payload(tables={"tradeoff": 0}))
