"""Benchmark E12: survivability under link faults (the retransmission
overlay restoring the Section 2 link model over lossy links).

Regenerates the corresponding row of DESIGN.md §6, asserts every
paper-shape check, and writes the sweep to ``BENCH_faults.json`` at the
repo root so overlay-overhead regressions show up in review diffs —
the same role ``BENCH_kernel.json`` plays for raw kernel speed.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.harness.experiments import QUICK, e12_survivability

from conftest import run_experiment

BENCH_PATH = Path(__file__).parent.parent / "BENCH_faults.json"


def test_e12_survivability(benchmark):
    report = run_experiment(benchmark, e12_survivability, QUICK)
    title, header, rows = report.tables[0]
    payload = {
        "experiment": report.experiment,
        "findings": dict(report.findings),
        "checks": {check.name: check.passed for check in report.checks},
        "lossy_sweep": {
            "title": title,
            "header": list(header),
            "rows": [list(row) for row in rows],
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
