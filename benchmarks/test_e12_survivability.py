"""Benchmark E12: survivability under link faults (the retransmission
overlay restoring the Section 2 link model over lossy links).

Regenerates the corresponding row of DESIGN.md §6, asserts every
paper-shape check, and writes the sweep to ``BENCH_faults.json`` at the
repo root so overlay-overhead regressions show up in review diffs —
the same role ``BENCH_kernel.json`` plays for raw kernel speed.
"""

from __future__ import annotations

from pathlib import Path

from repro.harness.experiments import QUICK, e12_survivability

from conftest import run_experiment, write_bench

BENCH_PATH = Path(__file__).parent.parent / "BENCH_faults.json"


def test_e12_survivability(benchmark):
    report = run_experiment(benchmark, e12_survivability, QUICK)
    write_bench(BENCH_PATH, report.to_payload(tables={"lossy_sweep": 0}))
