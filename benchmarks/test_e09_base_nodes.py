"""Benchmark E09: E9 — time as a function of the number of base nodes r.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e9_base_nodes

from conftest import run_experiment


def test_e09_base_nodes(benchmark):
    run_experiment(benchmark, e9_base_nodes, QUICK)
