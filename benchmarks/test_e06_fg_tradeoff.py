"""Benchmark E06: E6 — the ℱ/𝒢 family: O(Nk) messages vs O(N/k) time; 𝒢 survives the chain.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e6_fg_tradeoff

from conftest import run_experiment


def test_e06_fg_tradeoff(benchmark):
    run_experiment(benchmark, e6_fg_tradeoff, QUICK)
