"""Benchmark E03: E3 — time under the chain wake-up (A Θ(N), A' O(√N), C O(log N)).

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e3_time_sense

from conftest import run_experiment


def test_e03_time_sense(benchmark):
    run_experiment(benchmark, e3_time_sense, QUICK)
