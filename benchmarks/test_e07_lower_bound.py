"""Benchmark E07: E7 — Theorem 5.1 executed: time ≥ N/16d; Ω(N/log N) for message-optimal.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e7_lower_bound

from conftest import run_experiment


def test_e07_lower_bound(benchmark):
    run_experiment(benchmark, e7_lower_bound, QUICK)
