"""Verification throughput regression tracking -> ``BENCH_verify.json``.

Measures the exhaustive checker the way ``test_kernel_speed.py`` measures
the simulator: fixed workloads, ``time.perf_counter`` around
``explore_protocol`` only, results written to ``BENCH_verify.json`` at
the repo root so perf regressions show up in review diffs.

The yardstick is the **PR 1 explorer** (commit 434bbec: pickle-digest
fingerprints, per-transition deepcopy, no compression, no symmetry, no
parallel strata) on this container.  Its reference workload is Protocol B
at N=4, ``por=True``: 5066 states at ~16,800 states/sec (~0.30 s).
Against it this explorer records, on the *same instance*:

* ``B@4-reference`` — ``compress=False`` visits the identical 5066-state
  graph, so its states/sec is the like-for-like engine speedup;
* ``B@4`` — the default search: inert-delivery compression covers the
  same execution space through ~2.1x fewer stored states, so its
  *effective* rate is (reference states / wall), the wall-clock speedup
  a user sees;
* ``B@4-prune`` — orbit-pruned bug-hunting mode stores canonical
  representatives only: >= 5x fewer stored states than the PR 1
  explorer (the ISSUE 3 acceptance bar; ~6.4x measured);
* ``B@4-census`` — distinct states modulo rotation during the sound
  search (the redundancy an id-oblivious protocol would shed);
* ``A@5`` / ``A@6`` — the headline reach: A@6 (~55k states) completes
  in seconds with tens of MB of RSS, where the seed checker could not
  finish A@5.

Peak RSS is ``ru_maxrss`` — a process-wide high-water mark, honest for
the big A@6 run that dominates this process's footprint, loose for the
small ones.  Floors are deliberately conservative: CI machines vary, and
a flaky perf gate is worse than none.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import count_unpruned_interleavings, explore_protocol

from conftest import write_bench

BENCH_PATH = Path(__file__).parent.parent / "BENCH_verify.json"

#: The PR 1 explorer on the reference workload (B@4, por=True), measured
#: in a fresh process on this container at commit 434bbec.
PR1_BASELINE = {"states": 5066, "states_per_sec": 16_800.0, "seconds": 0.30}

#: Conservative floor on the like-for-like engine speedup (measured ~2.5x).
MIN_ENGINE_SPEEDUP = 1.5

#: The ISSUE 3 acceptance bar: >= 5x fewer stored canonical states than
#: the PR 1 explorer on B@4 (measured ~6.4x in prune mode).
MIN_STORE_REDUCTION = 5.0

_RESULTS: dict[str, dict[str, float]] = {}


def _rss_mb() -> float:
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1)


def _measure(label: str, protocol, topology, **kwargs):
    start = time.perf_counter()
    report = explore_protocol(protocol, topology, **kwargs)
    dt = time.perf_counter() - start
    stats = {
        "run_seconds": round(dt, 4),
        "states": report.states_explored,
        "transitions": report.transitions,
        "states_per_sec": round(report.states_explored / dt, 1),
        "compressed_steps": report.compressed_steps,
        "peak_rss_mb": _rss_mb(),
        "complete": report.complete,
    }
    if report.canonical_states is not None:
        stats["canonical_states"] = report.canonical_states
    _RESULTS[label] = stats
    return report, stats


def _flush() -> None:
    _RESULTS["pr1_baseline_B@4"] = dict(PR1_BASELINE)
    write_bench(BENCH_PATH, _RESULTS)


def test_b4_reference_search_beats_pr1_engine(benchmark):
    """compress=False visits the PR 1 explorer's exact 5066-state graph."""
    topology = complete_with_sense_of_direction(4)
    report, stats = benchmark.pedantic(
        _measure, args=("B@4-reference", ProtocolB(), topology),
        kwargs={"compress": False}, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    assert report.states_explored == PR1_BASELINE["states"]
    assert stats["states_per_sec"] >= (
        MIN_ENGINE_SPEEDUP * PR1_BASELINE["states_per_sec"]
    )
    _flush()


def test_b4_default_search_covers_same_space_faster(benchmark):
    topology = complete_with_sense_of_direction(4)
    reference = explore_protocol(ProtocolB(), topology, compress=False)
    report, stats = benchmark.pedantic(
        _measure, args=("B@4", ProtocolB(), topology), rounds=1, iterations=1,
    )
    # compression must not change the verdict, only the stored graph
    assert report.quiescent_outcomes == reference.quiescent_outcomes
    assert report.terminal_states == reference.terminal_states
    stats["effective_states_per_sec"] = round(
        reference.states_explored / stats["run_seconds"], 1
    )
    stats["wall_speedup_vs_pr1"] = round(
        PR1_BASELINE["seconds"] / stats["run_seconds"], 2
    )
    benchmark.extra_info.update(stats)
    _flush()


def test_b4_prune_mode_meets_the_store_reduction_bar(benchmark):
    """Orbit-pruned store: >= 5x fewer canonical states than PR 1 kept."""
    topology = complete_with_sense_of_direction(4)
    report, stats = benchmark.pedantic(
        _measure, args=("B@4-prune", ProtocolB(), topology),
        kwargs={"symmetry": "prune-unsound"}, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    reduction = PR1_BASELINE["states"] / report.states_explored
    stats["store_reduction_vs_pr1"] = round(reduction, 2)
    assert reduction >= MIN_STORE_REDUCTION
    _flush()


def test_b4_census(benchmark):
    topology = complete_with_sense_of_direction(4)
    report, stats = benchmark.pedantic(
        _measure, args=("B@4-census", ProtocolB(), topology),
        kwargs={"symmetry": "census"}, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    assert report.canonical_states < report.states_explored
    _flush()


def test_explore_protocol_c_n4(benchmark):
    report, stats = benchmark.pedantic(
        _measure,
        args=("C@4", ProtocolC(), complete_with_sense_of_direction(4)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    _flush()


def test_explore_protocol_e_n3(benchmark):
    report, stats = benchmark.pedantic(
        _measure, args=("E@3", ProtocolE(), complete_without_sense(3, seed=0)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    _flush()


def test_por_reduction_ratio_b4(benchmark):
    """POR visits >= 10x fewer states than the unpruned execution tree."""
    topology = complete_with_sense_of_direction(4)
    reduced = explore_protocol(ProtocolB(), topology, por=True)
    bound = 10 * reduced.states_explored
    baseline = benchmark.pedantic(
        lambda: count_unpruned_interleavings(
            ProtocolB(), topology, max_states=bound
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["por_states"] = reduced.states_explored
    benchmark.extra_info["unpruned_states_lower_bound"] = (
        baseline.states_explored
    )
    assert not baseline.complete  # the tree blows through the 10x cap
    assert reduced.states_explored * 10 <= baseline.states_explored


def test_explore_a5_completes(benchmark):
    """Exhaustive Protocol A at N=5 — out of reach for the seed checker."""
    report, stats = benchmark.pedantic(
        _measure,
        args=("A@5", ProtocolA(), complete_with_sense_of_direction(5)),
        kwargs={"max_states": 100_000}, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    assert report.leaders_seen == {0, 1, 2, 3, 4}
    _flush()


def test_explore_a6_completes(benchmark):
    """The ISSUE 3 reach target: complete coverage of Protocol A at N=6.

    (The companion B@N=5 target is structurally void — Protocol B's
    tournament requires a power-of-two N, so N=5 does not exist for it
    and N=8 is beyond exhaustive reach at ~3M+ states; B's exhaustive
    milestone remains complete coverage at N=4, tracked above.)
    """
    report, stats = benchmark.pedantic(
        _measure,
        args=("A@6", ProtocolA(), complete_with_sense_of_direction(6)),
        kwargs={"max_states": 500_000}, rounds=1, iterations=1,
    )
    benchmark.extra_info.update(stats)
    assert report.complete
    assert report.leaders_seen == {0, 1, 2, 3, 4, 5}
    _flush()
