"""Benchmark E10: E10 — spanning tree / global function / broadcast ≡ election + O(N).

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e10_applications

from conftest import run_experiment


def test_e10_applications(benchmark):
    run_experiment(benchmark, e10_applications, QUICK)
