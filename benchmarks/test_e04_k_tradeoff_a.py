"""Benchmark E04: E4 — Protocol A/A' trade-off over k (messages N+N²/k², time k+N/k).

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e4_k_tradeoff_a

from conftest import run_experiment


def test_e04_k_tradeoff_a(benchmark):
    run_experiment(benchmark, e4_k_tradeoff_a, QUICK)
