"""Benchmark E02: E2 — message complexity with sense of direction (LMW86/A/A'/C are O(N); B is O(N log N)).

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e2_messages_sense

from conftest import run_experiment


def test_e02_messages_sense(benchmark):
    run_experiment(benchmark, e2_messages_sense, QUICK)
