"""Benchmark: verification throughput and the POR reduction ratio.

Tracks the explorer's states/second (copy-on-write branching and
incremental fingerprints dominate) so a kernel or protocol state-size
regression shows up as a throughput drop, and records the headline
reduction numbers:

* ``full DFS`` (``por=False``) vs ``POR`` states and states/sec on
  Protocol B at N=4 — the before/after of the reduction work;
* the unpruned execution-tree baseline, proving POR explores >= 10x
  fewer states than the literal "every interleaving" enumeration;
* exhaustive Protocol A at N=5, which the seed checker could not finish.
"""

import time

from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_b import ProtocolB
from repro.protocols.sense.protocol_c import ProtocolC
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import count_unpruned_interleavings, explore_protocol


def test_explore_protocol_c_n4(benchmark):
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolC(), complete_with_sense_of_direction(4)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = report.states_explored
    assert report.complete


def test_explore_protocol_e_n3(benchmark):
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolE(), complete_without_sense(3, seed=0)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = report.states_explored
    assert report.complete


def test_explore_b4_full_dfs(benchmark):
    """The "before" bar: memoised DFS with the reduction switched off."""
    topology = complete_with_sense_of_direction(4)
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolB(), topology, por=False),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - start
    benchmark.extra_info["states"] = report.states_explored
    benchmark.extra_info["states_per_sec"] = round(
        report.states_explored / elapsed
    )
    assert report.complete


def test_explore_b4_with_por(benchmark):
    """The "after" bar: same instance, partial-order reduction on."""
    topology = complete_with_sense_of_direction(4)
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolB(), topology, por=True),
        rounds=1, iterations=1,
    )
    elapsed = time.perf_counter() - start
    benchmark.extra_info["states"] = report.states_explored
    benchmark.extra_info["states_per_sec"] = round(
        report.states_explored / elapsed
    )
    assert report.complete


def test_por_reduction_ratio_b4(benchmark):
    """POR visits >= 10x fewer states than the unpruned execution tree."""
    topology = complete_with_sense_of_direction(4)
    reduced = explore_protocol(ProtocolB(), topology, por=True)
    bound = 10 * reduced.states_explored
    baseline = benchmark.pedantic(
        lambda: count_unpruned_interleavings(
            ProtocolB(), topology, max_states=bound
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["por_states"] = reduced.states_explored
    benchmark.extra_info["unpruned_states_lower_bound"] = (
        baseline.states_explored
    )
    assert not baseline.complete  # the tree blows through the 10x cap
    assert reduced.states_explored * 10 <= baseline.states_explored


def test_explore_a5_completes(benchmark):
    """Exhaustive Protocol A at N=5 — out of reach before this rework."""
    report = benchmark.pedantic(
        lambda: explore_protocol(
            ProtocolA(), complete_with_sense_of_direction(5),
            max_states=100_000,
        ),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = report.states_explored
    benchmark.extra_info["transitions"] = report.transitions
    assert report.complete
    assert report.leaders_seen == {0, 1, 2, 3, 4}
