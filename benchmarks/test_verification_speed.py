"""Benchmark: exhaustive-exploration throughput.

Tracks the explorer's states/second (clone + fingerprint dominate) so a
kernel or protocol state-size regression shows up as a throughput drop.
"""

from repro.protocols.sense.protocol_c import ProtocolC
from repro.protocols.nosense.protocol_e import ProtocolE
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)
from repro.verification import explore_protocol


def test_explore_protocol_c_n4(benchmark):
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolC(), complete_with_sense_of_direction(4)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = report.states_explored
    assert report.complete


def test_explore_protocol_e_n3(benchmark):
    report = benchmark.pedantic(
        lambda: explore_protocol(ProtocolE(), complete_without_sense(3, seed=0)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["states"] = report.states_explored
    assert report.complete
