"""Kernel throughput regression tracking.

Measures raw simulator speed — events/sec and messages/sec through
``Network.run()`` — on two fixed workloads, and writes the numbers to
``BENCH_kernel.json`` at the repo root so perf regressions show up in
review diffs.

Methodology: topology construction is *excluded* (it is O(N) for the
sense-of-direction wiring but O(N²) for explicit port maps and would
swamp the kernel signal); only ``net.run()`` is timed with
``time.perf_counter``; throughput is ``scheduler.events_processed / dt``.
Each workload is run three times on fresh ``Network`` instances and the
*fastest* run is recorded — every run processes the identical event
sequence (the kernel is deterministic), so the minimum wall time is the
best estimate of true kernel speed under noisy-neighbour CPU steal.
The baselines are what the seed kernel (commit e13e13e, pre tuple-heap
rewrite) measured on this container; the tuple-based kernel is asserted
to beat them by at least 2x, with the actual multiple (~3.5x for C@2048
when measured in a fresh process) recorded in the JSON.  The floor is
deliberately loose: CI machines vary, and a flaky perf gate is worse
than none.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.matrix.check import _result_fields
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import Network
from repro.sim.shard import ShardedNetwork
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

from conftest import write_bench

BENCH_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"

#: events/sec the seed kernel sustained on these workloads (fresh process,
#: this container).  Regenerate by checking out the seed and running
#: benchmarks/test_kernel_speed.py::_measure on the same machine.
SEED_BASELINE = {
    "C@2048": 51_000.0,
    "G@1024-k10": 58_700.0,
}

#: Loose regression floor: the rewrite measures ~3.5x on C@2048; anything
#: under 2x on a quiet machine is a real regression, not noise.
MIN_SPEEDUP = 2.0

_RESULTS: dict[str, dict[str, float]] = {}


#: Fresh runs per workload; the fastest is recorded (see module docstring).
ROUNDS = 3


def _measure(
    label: str, make_protocol, topology, seed: int = 0
) -> dict[str, float]:
    best_dt = float("inf")
    for _ in range(ROUNDS):
        net = Network(make_protocol(), topology, seed=seed)
        start = time.perf_counter()
        result = net.run()
        dt = time.perf_counter() - start
        if dt < best_dt:
            best_dt = dt
            events = net.scheduler.events_processed
            messages = result.messages_total
    stats = {
        "run_seconds": round(best_dt, 4),
        "events": events,
        "events_per_sec": round(events / best_dt, 1),
        "messages": messages,
        "messages_per_sec": round(messages / best_dt, 1),
        "seed_events_per_sec": SEED_BASELINE[label],
        "speedup_vs_seed": round(events / best_dt / SEED_BASELINE[label], 2),
    }
    _RESULTS[label] = stats
    return stats


def _flush():
    write_bench(BENCH_PATH, _RESULTS)


def test_kernel_throughput_protocol_c_2048(benchmark):
    topology = complete_with_sense_of_direction(2048)
    stats = benchmark.pedantic(
        _measure, args=("C@2048", ProtocolC, topology), rounds=1, iterations=1
    )
    benchmark.extra_info.update(stats)
    _flush()
    assert stats["speedup_vs_seed"] >= MIN_SPEEDUP, (
        f"kernel slowed down: {stats['events_per_sec']:.0f} ev/s is "
        f"{stats['speedup_vs_seed']:.2f}x the seed baseline "
        f"{SEED_BASELINE['C@2048']:.0f} (floor {MIN_SPEEDUP}x)"
    )


#: Shard count for the large sharded workload: enough to show the
#: window-synchronised kernel's aggregate capacity without making the
#: coordinator the bottleneck at this N.
SHARDS = 16

#: Aggregate-capacity floor for the sharded workload.  The ratio is
#: structural, not wall-clock: ``aggregate_events_per_sec`` sums the
#: per-shard busy-time rates (the throughput ``SHARDS`` cores would
#: sustain), so on any machine it lands near ``SHARDS`` x the per-shard
#: dispatch efficiency (~1.2x serial per shard at this N) and 10x leaves
#: a wide noise margin.
MIN_SHARDED_SPEEDUP = 10.0


def _measure_sharded(label: str, n: int, shards: int) -> dict[str, float]:
    serial = Network(ProtocolC(), complete_with_sense_of_direction(n))
    start = time.perf_counter()
    serial_result = serial.run()
    serial_dt = time.perf_counter() - start
    serial_rate = serial.scheduler.events_processed / serial_dt

    sharded = ShardedNetwork(
        ProtocolC(), complete_with_sense_of_direction(n),
        shards=shards, workers=0,
    )
    start = time.perf_counter()
    sharded_result = sharded.run()
    sharded_dt = time.perf_counter() - start

    aggregate = sharded.aggregate_events_per_sec
    stats = {
        "shards": shards,
        "events": sharded.stats["events_total"],
        "windows": sharded.stats["windows"],
        "run_seconds": round(sharded_dt, 4),
        "serial_run_seconds": round(serial_dt, 4),
        "serial_events_per_sec": round(serial_rate, 1),
        "aggregate_events_per_sec": round(aggregate, 1),
        "sharded_speedup_vs_serial": round(aggregate / serial_rate, 2),
        "checks": {
            "digest_matches_serial": (
                _result_fields(serial_result) == _result_fields(sharded_result)
            ),
        },
    }
    _RESULTS[label] = stats
    return stats


def test_kernel_throughput_protocol_g_1024(benchmark):
    topology = complete_without_sense(1024, seed=5)
    stats = benchmark.pedantic(
        _measure,
        args=("G@1024-k10", lambda: ProtocolG(k=10), topology, 5),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(stats)
    _flush()
    # 𝒢 is message-heavier per event and gains less than C; still require
    # a clear win over the seed.
    assert stats["speedup_vs_seed"] >= 1.5, (
        f"kernel slowed down: {stats['events_per_sec']:.0f} ev/s is "
        f"{stats['speedup_vs_seed']:.2f}x the seed baseline "
        f"{SEED_BASELINE['G@1024-k10']:.0f} (floor 1.5x)"
    )


def test_sharded_kernel_aggregate_throughput_c_131072(benchmark):
    """ISSUE 7 headline: C at N=131072 (2^17, the smallest power-of-two
    >= 100k that Protocol C accepts), 16 shards, digest-checked against
    the serial run it is compared to."""
    stats = benchmark.pedantic(
        _measure_sharded,
        args=("C@131072-sharded16", 131072, SHARDS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if k != "checks"}
    )
    _flush()
    assert stats["checks"]["digest_matches_serial"], (
        "sharded C@131072 diverged from the serial kernel — the speedup "
        "number is meaningless if the digest contract is broken"
    )
    assert stats["sharded_speedup_vs_serial"] >= MIN_SHARDED_SPEEDUP, (
        f"sharded aggregate capacity fell to "
        f"{stats['sharded_speedup_vs_serial']:.1f}x serial "
        f"(floor {MIN_SHARDED_SPEEDUP}x)"
    )
