"""Kernel throughput regression tracking.

Measures raw simulator speed — events/sec and messages/sec through
``Network.run()`` — on two fixed workloads, and writes the numbers to
``BENCH_kernel.json`` at the repo root so perf regressions show up in
review diffs.

Methodology: topology construction is *excluded* (it is O(N) for the
sense-of-direction wiring but O(N²) for explicit port maps and would
swamp the kernel signal); only ``net.run()`` is timed with
``time.perf_counter``; throughput is ``scheduler.events_processed / dt``.
Each workload is run three times on fresh ``Network`` instances and the
*fastest* run is recorded — every run processes the identical event
sequence (the kernel is deterministic), so the minimum wall time is the
best estimate of true kernel speed under noisy-neighbour CPU steal.  The
sharded workloads apply the same best-of-three to both sides of the
serial-vs-sharded comparison (fastest serial run, highest aggregate
sharded run) and record the process's ``peak_rss_mb`` alongside the
rates; the vector-engine entry additionally measures the interp engine
in the same process so ``vector_speedup_vs_interp`` compares like with
like.
The baselines are what the seed kernel (commit e13e13e, pre tuple-heap
rewrite) measured on this container; the tuple-based kernel is asserted
to beat them by at least 2x, with the actual multiple (~3.5x for C@2048
when measured in a fresh process) recorded in the JSON.  The floor is
deliberately loose: CI machines vary, and a flaky perf gate is worse
than none.
"""

from __future__ import annotations

import resource
import time
from pathlib import Path

from repro.matrix.check import _result_fields
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import Network
from repro.sim.shard import ShardedNetwork
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

from conftest import write_bench

BENCH_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"

#: events/sec the seed kernel sustained on these workloads (fresh process,
#: this container).  Regenerate by checking out the seed and running
#: benchmarks/test_kernel_speed.py::_measure on the same machine.
SEED_BASELINE = {
    "C@2048": 51_000.0,
    "G@1024-k10": 58_700.0,
}

#: Loose regression floor: the rewrite measures ~3.5x on C@2048; anything
#: under 2x on a quiet machine is a real regression, not noise.
MIN_SPEEDUP = 2.0

_RESULTS: dict[str, dict[str, float]] = {}


#: Fresh runs per workload; the fastest is recorded (see module docstring).
ROUNDS = 3


def _measure(
    label: str, make_protocol, topology, seed: int = 0
) -> dict[str, float]:
    best_dt = float("inf")
    for _ in range(ROUNDS):
        net = Network(make_protocol(), topology, seed=seed)
        start = time.perf_counter()
        result = net.run()
        dt = time.perf_counter() - start
        if dt < best_dt:
            best_dt = dt
            events = net.scheduler.events_processed
            messages = result.messages_total
    stats = {
        "run_seconds": round(best_dt, 4),
        "events": events,
        "events_per_sec": round(events / best_dt, 1),
        "messages": messages,
        "messages_per_sec": round(messages / best_dt, 1),
        "seed_events_per_sec": SEED_BASELINE[label],
        "speedup_vs_seed": round(events / best_dt / SEED_BASELINE[label], 2),
    }
    _RESULTS[label] = stats
    return stats


def _flush():
    write_bench(BENCH_PATH, _RESULTS)


def test_kernel_throughput_protocol_c_2048(benchmark):
    topology = complete_with_sense_of_direction(2048)
    stats = benchmark.pedantic(
        _measure, args=("C@2048", ProtocolC, topology), rounds=1, iterations=1
    )
    benchmark.extra_info.update(stats)
    _flush()
    assert stats["speedup_vs_seed"] >= MIN_SPEEDUP, (
        f"kernel slowed down: {stats['events_per_sec']:.0f} ev/s is "
        f"{stats['speedup_vs_seed']:.2f}x the seed baseline "
        f"{SEED_BASELINE['C@2048']:.0f} (floor {MIN_SPEEDUP}x)"
    )


#: Shard count for the large sharded workload: enough to show the
#: window-synchronised kernel's aggregate capacity without making the
#: coordinator the bottleneck at this N.
SHARDS = 16

#: Aggregate-capacity floor for the sharded workload.  The ratio is
#: structural, not wall-clock: ``aggregate_events_per_sec`` sums the
#: per-shard busy-time rates (the throughput ``SHARDS`` cores would
#: sustain), so on any machine it lands near ``SHARDS`` x the per-shard
#: dispatch efficiency (~1.2x serial per shard at this N) and 10x leaves
#: a wide noise margin.
MIN_SHARDED_SPEEDUP = 10.0

#: The frozen interp-engine record for C@131072-sharded16 (the committed
#: BENCH_kernel.json value at the time the vector engine landed).  The
#: vector engine's acceptance floor is an absolute multiple of this
#: number, not of the same-session interp measurement, so a slow machine
#: cannot "pass" by dragging the baseline down with it.
INTERP_RECORD_AGGREGATE = 1_845_902.6

#: Absolute floor for the vector engine: at least 1.5x the frozen record.
MIN_VECTOR_VS_RECORD = 1.5

#: Sanity floor on the same-process vector/interp ratio.  The measured
#: ratio on this container is ~1.4-1.6 (single core, noisy); the gate
#: only needs to catch "vector stopped being faster at all".
MIN_VECTOR_VS_INTERP = 1.1


def _peak_rss_mb() -> float:
    """The process's peak resident set, in MB (Linux ru_maxrss is KB)."""
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1)


#: Serial baseline cache: n -> (result fields, best rate, best seconds).
#: Both sharded entries compare against the same best-of-ROUNDS serial
#: run, measured once per process.
_SERIAL: dict[int, tuple[tuple, float, float]] = {}


def _serial_baseline(n: int) -> tuple[tuple, float, float]:
    cached = _SERIAL.get(n)
    if cached is not None:
        return cached
    best_dt = float("inf")
    for _ in range(ROUNDS):
        serial = Network(ProtocolC(), complete_with_sense_of_direction(n))
        start = time.perf_counter()
        result = serial.run()
        dt = time.perf_counter() - start
        if dt < best_dt:
            best_dt = dt
            fields = _result_fields(result)
            rate = serial.scheduler.events_processed / dt
    _SERIAL[n] = (fields, rate, best_dt)
    return _SERIAL[n]


def _measure_sharded(
    label: str, n: int, shards: int, engine: str
) -> dict[str, float]:
    serial_fields, serial_rate, serial_dt = _serial_baseline(n)

    best_aggregate = 0.0
    for _ in range(ROUNDS):
        sharded = ShardedNetwork(
            ProtocolC(), complete_with_sense_of_direction(n),
            shards=shards, workers=0, engine=engine,
        )
        start = time.perf_counter()
        result = sharded.run()
        dt = time.perf_counter() - start
        aggregate = sharded.aggregate_events_per_sec
        if aggregate > best_aggregate:
            best_aggregate = aggregate
            best = sharded
            best_dt = dt
            digest_ok = serial_fields == _result_fields(result)

    stats = {
        "engine": engine,
        "shards": shards,
        "events": best.stats["events_total"],
        "windows": best.stats["windows"],
        "run_seconds": round(best_dt, 4),
        "serial_run_seconds": round(serial_dt, 4),
        "serial_events_per_sec": round(serial_rate, 1),
        "aggregate_events_per_sec": round(best_aggregate, 1),
        "sharded_speedup_vs_serial": round(best_aggregate / serial_rate, 2),
        "peak_rss_mb": _peak_rss_mb(),
        "checks": {"digest_matches_serial": digest_ok},
    }
    _RESULTS[label] = stats
    return stats


def _measure_sharded_vector(label: str, n: int, shards: int) -> dict:
    """The vector entry: interp measured in the same process, then vector.

    ``vector_speedup_vs_interp`` is a same-process, same-workload ratio —
    the only way the two engines' busy-time rates are comparable on a
    noisy machine.  The interp side reuses the interp entry's measurement
    when that test already ran in this process (it did, in a full bench
    run) and measures it otherwise.
    """
    interp_label = f"C@{n}-sharded{shards}"
    interp = _RESULTS.get(interp_label)
    if interp is None:
        interp = _measure_sharded(interp_label, n, shards, "interp")
    stats = _measure_sharded(label, n, shards, "vector")
    stats["interp_aggregate_events_per_sec"] = interp[
        "aggregate_events_per_sec"
    ]
    stats["vector_speedup_vs_interp"] = round(
        stats["aggregate_events_per_sec"]
        / interp["aggregate_events_per_sec"],
        2,
    )
    stats["vector_speedup_vs_record"] = round(
        stats["aggregate_events_per_sec"] / INTERP_RECORD_AGGREGATE, 2
    )
    return stats


def test_kernel_throughput_protocol_g_1024(benchmark):
    topology = complete_without_sense(1024, seed=5)
    stats = benchmark.pedantic(
        _measure,
        args=("G@1024-k10", lambda: ProtocolG(k=10), topology, 5),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(stats)
    _flush()
    # 𝒢 is message-heavier per event and gains less than C; still require
    # a clear win over the seed.
    assert stats["speedup_vs_seed"] >= 1.5, (
        f"kernel slowed down: {stats['events_per_sec']:.0f} ev/s is "
        f"{stats['speedup_vs_seed']:.2f}x the seed baseline "
        f"{SEED_BASELINE['G@1024-k10']:.0f} (floor 1.5x)"
    )


def test_sharded_kernel_aggregate_throughput_c_131072(benchmark):
    """ISSUE 7 headline: C at N=131072 (2^17, the smallest power-of-two
    >= 100k that Protocol C accepts), 16 shards, digest-checked against
    the serial run it is compared to."""
    stats = benchmark.pedantic(
        _measure_sharded,
        args=("C@131072-sharded16", 131072, SHARDS, "interp"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if k != "checks"}
    )
    _flush()
    assert stats["checks"]["digest_matches_serial"], (
        "sharded C@131072 diverged from the serial kernel — the speedup "
        "number is meaningless if the digest contract is broken"
    )
    assert stats["sharded_speedup_vs_serial"] >= MIN_SHARDED_SPEEDUP, (
        f"sharded aggregate capacity fell to "
        f"{stats['sharded_speedup_vs_serial']:.1f}x serial "
        f"(floor {MIN_SHARDED_SPEEDUP}x)"
    )


def test_sharded_vector_engine_throughput_c_131072(benchmark):
    """ISSUE 8 headline: the vectorized delivery engine on the same
    workload, digest-checked, with both the same-process interp ratio and
    the absolute multiple of the frozen interp record asserted."""
    stats = benchmark.pedantic(
        _measure_sharded_vector,
        args=("C@131072-sharded16-vector", 131072, SHARDS),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if k != "checks"}
    )
    _flush()
    assert stats["checks"]["digest_matches_serial"], (
        "vector-engine C@131072 diverged from the serial kernel — the "
        "speedup number is meaningless if the digest contract is broken"
    )
    assert stats["vector_speedup_vs_record"] >= MIN_VECTOR_VS_RECORD, (
        f"vector engine reached only "
        f"{stats['aggregate_events_per_sec']:.0f} ev/s aggregate = "
        f"{stats['vector_speedup_vs_record']:.2f}x the frozen interp "
        f"record {INTERP_RECORD_AGGREGATE:.0f} "
        f"(floor {MIN_VECTOR_VS_RECORD}x)"
    )
    assert stats["vector_speedup_vs_interp"] >= MIN_VECTOR_VS_INTERP, (
        f"vector engine is only {stats['vector_speedup_vs_interp']:.2f}x "
        f"same-process interp (floor {MIN_VECTOR_VS_INTERP}x)"
    )
