"""Micro-benchmarks: wall-clock cost of simulating one election.

These time the *simulator* (events/second), not the protocols' virtual-time
complexity — that is what experiments E2–E9 measure.  Useful to catch
kernel performance regressions; a 128-node Protocol C election should stay
comfortably in the low milliseconds.
"""

from __future__ import annotations

import pytest

from repro.protocols.nosense.protocol_e import ProtocolE
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_a import ProtocolA
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)

N = 128


@pytest.mark.parametrize(
    "name,factory,sense",
    [
        ("A", ProtocolA, True),
        ("C", ProtocolC, True),
        ("E", ProtocolE, False),
        ("G", ProtocolG, False),
    ],
)
def test_election_simulation_speed(benchmark, name, factory, sense):
    def run():
        if sense:
            topology = complete_with_sense_of_direction(N)
        else:
            topology = complete_without_sense(N, seed=1)
        return run_election(factory(), topology)

    result = benchmark(run)
    benchmark.extra_info["messages"] = result.messages_total
    result.verify()


def test_topology_construction_speed(benchmark):
    benchmark(complete_without_sense, 256, seed=3)
