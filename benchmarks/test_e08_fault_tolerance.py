"""Benchmark E08: E8 — initial site failures: O(Nf + N log N) messages, live leader.

Regenerates the corresponding row of DESIGN.md §6 and asserts every
paper-shape check.  Run ``python -m repro.harness.report`` for the
full-scale sweep behind EXPERIMENTS.md.
"""

from repro.harness.experiments import QUICK, e8_fault_tolerance

from conftest import run_experiment


def test_e08_fault_tolerance(benchmark):
    run_experiment(benchmark, e8_fault_tolerance, QUICK)
