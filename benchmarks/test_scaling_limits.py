"""Scaling benchmarks: the headline protocols at N in the thousands.

The asymptotic claims are most convincing where the constants have stopped
mattering; these benches push protocol C to N = 8192 and 𝒢 to N = 4096 and
assert the per-node message budget is still flat — i.e. the O(N) message
claim holds more than two orders of magnitude above the unit-test sizes.
(N = 8192 is reachable because the sense-of-direction topology computes its
wiring arithmetically instead of materialising N² port-table entries, and
𝒢's explicit maps are packed ``array('i')`` rows.)
"""

from __future__ import annotations

import math

from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.nosense.protocol_r import ProtocolR
from repro.protocols.sense.protocol_c import ProtocolC
from repro.sim.network import run_election
from repro.sim.shard import ShardedNetwork
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


def test_protocol_c_at_8192(benchmark):
    n = 8192

    def run():
        return run_election(ProtocolC(), complete_with_sense_of_direction(n))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["messages"] = result.messages_total
    benchmark.extra_info["virtual_time"] = result.election_time
    assert result.messages_per_node <= 10  # O(N) messages, flat per node
    assert result.election_time <= 8 * math.log2(n)  # O(log N) time


def test_protocol_c_at_one_million_sharded(benchmark):
    """The million-node election (ISSUE 7): C at N = 1048576 (2^20) on
    the sharded kernel.

    The serial kernel cannot hold this run: a single heap over ~9M
    events plus per-node snapshot objects pushes past practical memory
    and takes the better part of an hour.  Sixteen window-synchronised
    shards with snapshots disabled complete it in ~2 minutes inside
    ~2.4 GB.  Snapshots off means ``result.verify()`` has nothing to
    check, so the assertions here are the aggregate ones: a leader was
    elected and the per-node message budget stayed flat — the O(N)
    claim three orders of magnitude above the unit-test sizes.
    """
    n = 1 << 20

    def run():
        network = ShardedNetwork(
            ProtocolC(), complete_with_sense_of_direction(n),
            shards=16, workers=0,
            max_events=20_000_000, collect_snapshots=False,
        )
        return network, network.run()

    network, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["messages"] = result.messages_total
    benchmark.extra_info["virtual_time"] = result.election_time
    benchmark.extra_info["events"] = network.stats["events_total"]
    benchmark.extra_info["windows"] = network.stats["windows"]
    benchmark.extra_info["aggregate_events_per_sec"] = round(
        network.aggregate_events_per_sec, 1
    )
    assert result.leader_id is not None
    assert result.messages_per_node <= 10  # O(N) messages, flat per node
    assert result.election_time <= 8 * math.log2(n)  # O(log N) time


def test_protocol_g_at_4096(benchmark):
    n, k = 4096, 12

    def run():
        return run_election(
            ProtocolG(k=k), complete_without_sense(n, seed=5), seed=5
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["messages"] = result.messages_total
    benchmark.extra_info["virtual_time"] = result.election_time
    assert result.messages_total <= 8 * n * k  # O(Nk)
    assert result.election_time <= 12 * n / k  # O(N/k)


def test_protocol_r_lone_base_at_1024(benchmark):
    n = 1024

    def run():
        return run_election(
            ProtocolR(), complete_without_sense(n, seed=5),
            wakeup={0: 0.0}, seed=5,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["virtual_time"] = result.election_time
    assert result.election_time <= 6 * math.log2(n)  # the r=1 log bound
