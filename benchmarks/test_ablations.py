"""Ablation benchmarks: remove one design ingredient at a time.

Each of the paper's protocols is an earlier protocol plus one idea; these
benches toggle exactly that idea and measure what it buys:

* **C's k choice** — sweep the class width k; the paper's
  ``k = N/2^⌈log log N⌉`` must sit on the message/time Pareto knee between
  the pure-sequential (k=1 ≈ LMW86) and pure-doubling (k=N ≈ B) extremes.
* **A′'s awaken spreading** — A with and without the two wake-up nudges
  under the chain schedule (the only difference between A and A′).
* **ℰ's flow control** — AG85 with and without the one-in-flight rule on
  the staged hotspot (the only difference between AG85 and ℰ).
* **𝒢's ordering phases** — ℱ with and without the two permission phases
  under the chain schedule (the only difference between ℱ and 𝒢).
* **FT's window headroom** — the redundancy window at f+1 vs f+log N vs
  f+N/4: more parallelism buys time, costs messages.
"""

from __future__ import annotations

import math

from repro.adversary import wakeup
from repro.adversary.congestion import hotspot_scenario
from repro.protocols.nosense.fault_tolerant import FaultTolerantElection
from repro.protocols.nosense.protocol_e import AfekGafni, ProtocolE
from repro.protocols.nosense.protocol_f import ProtocolF
from repro.protocols.nosense.protocol_g import ProtocolG
from repro.protocols.sense.protocol_a import ProtocolA, ProtocolAPrime
from repro.protocols.sense.protocol_c import ProtocolC, protocol_c_k
from repro.sim.network import Network, run_election
from repro.topology.complete import (
    complete_with_sense_of_direction,
    complete_without_sense,
)


def test_ablation_c_class_width(benchmark):
    """The paper's k balances C between its two parent protocols."""
    n = 256

    def sweep():
        rows = {}
        k = 1
        while k <= n:
            result = run_election(
                ProtocolC(k=k), complete_with_sense_of_direction(n)
            )
            rows[k] = (result.messages_total, result.election_time)
            k *= 4
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    paper_k = protocol_c_k(n)
    paper = run_election(
        ProtocolC(), complete_with_sense_of_direction(n)
    )
    benchmark.extra_info["paper_k"] = paper_k
    benchmark.extra_info["sweep"] = {k: rows[k] for k in rows}
    best_msgs = min(msgs for msgs, _ in rows.values())
    best_time = min(t for _, t in rows.values())
    # The paper's k is within 2x of the best of the whole family on BOTH
    # axes simultaneously — neither extreme achieves that.
    assert paper.messages_total <= 2 * best_msgs
    assert paper.election_time <= 2 * best_time
    k_min, k_max = min(rows), max(rows)
    sequential_msgs, sequential_time = rows[k_min]
    doubling_msgs, doubling_time = rows[k_max]
    assert doubling_msgs > 2 * paper.messages_total  # pure doubling overpays
    assert sequential_time > 2 * paper.election_time  # pure sequential is slow


def test_ablation_a_prime_awaken_spreading(benchmark):
    """The two awaken nudges are all that separates A from A′."""
    n = 256

    def duel():
        plain = run_election(
            ProtocolA(), complete_with_sense_of_direction(n),
            wakeup=wakeup.staggered_chain(),
        )
        spread = run_election(
            ProtocolAPrime(), complete_with_sense_of_direction(n),
            wakeup=wakeup.staggered_chain(),
        )
        return plain, spread

    plain, spread = benchmark.pedantic(duel, rounds=1, iterations=1)
    benchmark.extra_info["time_without"] = plain.election_time
    benchmark.extra_info["time_with"] = spread.election_time
    assert plain.election_time >= 0.7 * n  # Θ(N) chain
    assert spread.election_time <= 8 * math.sqrt(n)  # O(√N)
    # the nudges cost at most 2N extra messages
    assert spread.messages_total - plain.messages_total <= 2 * n + 8


def test_ablation_e_flow_control(benchmark):
    """The one-in-flight forward rule is all that separates ℰ from AG85."""
    n = 128

    def duel():
        topo, wake, delays = hotspot_scenario(n)
        without = Network(AfekGafni(), topo, delays=delays, wakeup=wake).run()
        topo, wake, delays = hotspot_scenario(n)
        with_fc = Network(ProtocolE(), topo, delays=delays, wakeup=wake).run()
        return without, with_fc

    without, with_fc = benchmark.pedantic(duel, rounds=1, iterations=1)
    benchmark.extra_info["time_without"] = without.election_time
    benchmark.extra_info["time_with"] = with_fc.election_time
    assert without.election_time / with_fc.election_time >= 5.0


def test_ablation_g_ordering_phases(benchmark):
    """The two permission phases are all that separates 𝒢 from ℱ."""
    n, k = 128, 8

    def duel():
        without = run_election(
            ProtocolF(k=k), complete_without_sense(n, seed=7),
            wakeup=wakeup.staggered_chain(), seed=7,
        )
        with_phases = run_election(
            ProtocolG(k=k), complete_without_sense(n, seed=7),
            wakeup=wakeup.staggered_chain(), seed=7,
        )
        return without, with_phases

    without, with_phases = benchmark.pedantic(duel, rounds=1, iterations=1)
    benchmark.extra_info["time_without"] = without.election_time
    benchmark.extra_info["time_with"] = with_phases.election_time
    assert with_phases.election_time < without.election_time


def test_ablation_ft_window_headroom(benchmark):
    """More window parallelism buys time; f+1 is the progress minimum."""
    import random

    n, f = 96, 20
    rng = random.Random(5)
    failed = frozenset(rng.sample(range(n), f))

    def sweep():
        out = {}
        for parallelism in (1, math.ceil(math.log2(n)), n // 4):
            result = run_election(
                FaultTolerantElection(max_failures=f, parallelism=parallelism),
                complete_without_sense(n, seed=5),
                failed_positions=failed,
                seed=5,
            )
            out[parallelism] = (result.messages_total, result.election_time)
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["sweep"] = rows
    times = [t for _, t in rows.values()]
    assert times[-1] <= times[0]  # widest window is fastest (or equal)
